"""CircuitBreaker state machine: closed -> open -> half-open -> closed."""

from repro.faults import (
    BreakerState,
    CircuitBreaker,
    FaultEventLog,
    ResiliencePolicy,
)
from repro.metrics import RunMetrics
from repro.sim import Environment


def make_breaker(threshold=3, cooldown=100.0):
    env = Environment()
    metrics = RunMetrics(env, 1)
    log = FaultEventLog(env)
    policy = ResiliencePolicy(
        breaker_threshold=threshold, breaker_cooldown=cooldown
    )
    return env, CircuitBreaker(env, 0, policy, log, metrics), metrics


def test_trips_only_on_consecutive_failures():
    env, breaker, _ = make_breaker(threshold=3)
    breaker.record_failure()
    breaker.record_failure()
    breaker.record_success()  # resets the streak
    breaker.record_failure()
    breaker.record_failure()
    assert breaker.state is BreakerState.CLOSED
    assert breaker.allow()
    breaker.record_failure()
    assert breaker.state is BreakerState.OPEN
    assert breaker.opened_count == 1
    assert not breaker.allow()


def _sleep(env, delay):
    yield env.timeout(delay)


def test_cooldown_then_half_open_probe_then_close():
    env, breaker, metrics = make_breaker(threshold=1, cooldown=100.0)
    breaker.record_failure()
    assert breaker.state is BreakerState.OPEN
    assert not breaker.allow()
    env.process(_sleep(env, 100.0))
    env.run()
    assert env.now == 100.0
    # Past the cooldown: allow() lazily transitions to HALF_OPEN and
    # admits the probe.
    assert breaker.allow()
    assert breaker.state is BreakerState.HALF_OPEN
    assert breaker.allow()  # further probes admitted too
    breaker.record_success()
    assert breaker.state is BreakerState.CLOSED
    transitions = [
        (old, new) for _, _, old, new in metrics.breaker_transitions
    ]
    assert transitions == [
        ("closed", "open"),
        ("open", "half-open"),
        ("half-open", "closed"),
    ]
    assert metrics.breaker_opens == 1


def test_half_open_failure_reopens_with_fresh_cooldown():
    env, breaker, _ = make_breaker(threshold=1, cooldown=100.0)
    breaker.record_failure()
    env.process(_sleep(env, 100.0))
    env.run()
    assert breaker.allow()  # -> HALF_OPEN
    breaker.record_failure()
    assert breaker.state is BreakerState.OPEN
    assert breaker.opened_count == 2
    assert not breaker.allow()  # new cooldown runs from the reopen


def test_open_intervals_cover_non_closed_spans():
    env, breaker, _ = make_breaker(threshold=1, cooldown=50.0)
    env.process(_sleep(env, 10.0))
    env.run()
    breaker.record_failure()  # open at t=10
    env.process(_sleep(env, 60.0))
    env.run()
    assert breaker.allow()  # half-open at t=70
    breaker.record_success()  # closed at t=70
    env.process(_sleep(env, 30.0))
    env.run()
    breaker.record_failure()  # open again at t=100, never closes
    assert breaker.open_intervals(end=120.0) == [(10.0, 70.0), (100.0, 120.0)]


def test_success_in_closed_is_a_no_op_transitionwise():
    env, breaker, metrics = make_breaker()
    breaker.record_success()
    breaker.record_success()
    assert breaker.state is BreakerState.CLOSED
    assert metrics.breaker_transitions == []
