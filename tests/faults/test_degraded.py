"""Degraded-mode acceptance: whole runs under fault plans.

Covers the PR's acceptance criteria: a fail-stopped disk measurably
degrades execution time while demand reads to healthy disks complete
without retry amplification, and a faulted run is bit-for-bit
reproducible (identical event-trace and fault-event digests) across
repeated executions.
"""

import pytest

from repro.analysis.audit import run_twice_and_diff
from repro.experiments import ExperimentConfig, run_experiment
from repro.experiments.chaos import chaos_config
from repro.faults import (
    FailSlow,
    FailStop,
    FaultPlan,
    HotSpot,
    ResiliencePolicy,
    TransientErrors,
)

SMALL = dict(
    n_nodes=4,
    n_disks=4,
    file_blocks=160,
    total_reads=160,
    record_trace=False,
)


def small_config(faults, pattern="lfp", **overrides):
    params = dict(SMALL, sync_style="none")
    params.update(overrides)
    return ExperimentConfig(pattern=pattern, faults=faults, **params)


FAILSTOP_PLAN = FaultPlan(
    faults=(FailStop(disk=0, at=200.0, recover=900.0),),
    resilience=ResiliencePolicy(
        timeout=240.0, max_retries=40, backoff_base=10.0, backoff_max=120.0
    ),
    name="one-dead-disk",
)


def test_fail_stop_degrades_but_healthy_disks_are_isolated():
    healthy = run_experiment(small_config(None))
    faulted = run_experiment(small_config(FAILSTOP_PLAN))

    # The outage measurably degrades the run...
    assert faulted.total_time > healthy.total_time
    # ...and is visible in the degraded-mode accounting.
    assert faulted.time_degraded >= 700.0 * 0.99
    assert faulted.disk_timeouts > 0

    # Demand reads to healthy disks complete without retry
    # amplification: every retry and timeout belongs to the victim.
    assert set(faulted.retries_by_disk) <= {0}
    assert set(faulted.timeouts_by_disk) <= {0}
    assert set(faulted.errors_by_disk) <= {0}

    # Healthy runs report all-zero fault measures.
    assert healthy.disk_errors == 0
    assert healthy.disk_retries == 0
    assert healthy.time_degraded == 0.0
    assert healthy.fault_digest == ""


def test_faulted_run_is_deterministic_under_audit():
    config = small_config(
        FaultPlan(
            faults=(
                FailStop(disk=0, at=200.0, recover=900.0),
                TransientErrors(disk=1, probability=0.1),
                FailSlow(disk=2, factor=2.0, start=100.0, end=600.0),
                HotSpot(disk=3, alpha=0.3),
            ),
            resilience=ResiliencePolicy(
                timeout=240.0, max_retries=40, backoff_base=10.0,
                backoff_max=120.0,
            ),
        ),
        pattern="gw",
        sync_style="per-proc",
    )
    for cell in (config, config.paired_baseline()):
        report = run_twice_and_diff(cell)
        assert report.identical, report.summary()
        assert (
            report.first.result.fault_digest
            == report.second.result.fault_digest
        )
        assert report.first.result.fault_digest != ""


def test_all_four_fault_kinds_complete_and_degrade():
    healthy = run_experiment(small_config(None, pattern="gw"))
    plans = {
        "fail-slow": FaultPlan(
            faults=(FailSlow(disk=0, factor=4.0),),
            resilience=ResiliencePolicy(),
        ),
        "transient": FaultPlan(
            faults=(TransientErrors(disk=0, probability=0.5),),
            resilience=ResiliencePolicy(max_retries=10),
        ),
        "hot-spot": FaultPlan(
            faults=(HotSpot(disk=0, alpha=1.0),),
            resilience=ResiliencePolicy(),
        ),
    }
    for label, plan in plans.items():
        result = run_experiment(small_config(plan, pattern="gw"))
        assert result.total_time > healthy.total_time, label
        assert result.time_degraded > 0.0, label
    # The transient plan also shows errors and retries.
    transient = run_experiment(
        small_config(plans["transient"], pattern="gw")
    )
    assert transient.disk_errors > 0
    assert transient.errors_by_disk.keys() <= {0}


def test_fault_plan_digest_lands_in_label_and_result():
    config = small_config(FAILSTOP_PLAN)
    assert f"faults:{FAILSTOP_PLAN.digest}" in config.label
    result = run_experiment(config)
    assert result.fault_digest != ""
    assert len(result.fault_events) > 0


def test_plan_targeting_missing_disk_is_rejected_at_config_time():
    plan = FaultPlan(
        faults=(FailStop(disk=9, at=1.0, recover=2.0),),
        resilience=ResiliencePolicy(timeout=100.0),
    )
    with pytest.raises(Exception, match="disk 9"):
        small_config(plan)  # SMALL has 4 disks


def test_prefetch_survives_faults_and_breaker_gates_prefetch():
    # A dead disk with an aggressive breaker: the run completes, the
    # breaker opens, and some prefetch actions report "suspended".
    plan = FaultPlan(
        faults=(FailStop(disk=0, at=100.0, recover=1200.0),),
        resilience=ResiliencePolicy(
            timeout=150.0, max_retries=60, backoff_base=10.0,
            backoff_max=60.0, breaker_threshold=2, breaker_cooldown=400.0,
        ),
    )
    result = run_experiment(small_config(plan, pattern="gw"))
    assert result.breaker_opens >= 1
    assert result.prefetch_outcomes.get("suspended", 0) >= 1
    # Prefetching still happened (on healthy disks at least).
    assert result.blocks_prefetched > 0


def test_chaos_config_pairs_share_plan_and_seed():
    config = chaos_config("gw", 0.05, seed=3)
    assert config.faults is not None
    baseline = config.paired_baseline()
    assert baseline.faults == config.faults
    assert baseline.seed == config.seed
    assert config.faults.for_disk(0)[0].probability == 0.05
