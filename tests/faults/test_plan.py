"""FaultPlan: validation, serialization round-trips, digests."""

import json

import pytest

from repro.faults import (
    FailSlow,
    FailStop,
    FaultPlan,
    FaultPlanError,
    HotSpot,
    ResiliencePolicy,
    TransientErrors,
)


def sample_plan():
    return FaultPlan(
        faults=(
            FailStop(disk=0, at=100.0, recover=400.0),
            FailSlow(disk=1, factor=3.0, start=50.0, end=250.0),
            TransientErrors(disk=2, probability=0.2),
            HotSpot(disk=3, alpha=0.5, start=0.0, end=1000.0),
        ),
        resilience=ResiliencePolicy(timeout=120.0),
        name="sample",
    )


def test_round_trip_preserves_plan_and_digest():
    plan = sample_plan()
    again = FaultPlan.from_dict(json.loads(plan.to_json()))
    assert again == plan
    assert again.digest == plan.digest


def test_save_load_round_trip(tmp_path):
    plan = sample_plan()
    path = tmp_path / "plan.json"
    plan.save(str(path))
    assert FaultPlan.load(str(path)) == plan


def test_digest_is_content_sensitive():
    plan = sample_plan()
    tweaked = FaultPlan(
        faults=plan.faults,
        resilience=ResiliencePolicy(timeout=121.0),
        name=plan.name,
    )
    assert tweaked.digest != plan.digest
    # Names are part of the content too (they land in provenance).
    renamed = FaultPlan(
        faults=plan.faults, resilience=plan.resilience, name="other"
    )
    assert renamed.digest != plan.digest


def test_plan_is_hashable_and_usable_in_config():
    plan = sample_plan()
    assert hash(plan) == hash(sample_plan())
    assert plan in {sample_plan()}


def test_for_disk_and_max_disk():
    plan = sample_plan()
    assert [s.kind for s in plan.for_disk(0)] == ["fail-stop"]
    assert plan.for_disk(7) == ()
    assert plan.max_disk == 3
    plan.validate_for(4)
    with pytest.raises(FaultPlanError):
        plan.validate_for(3)


@pytest.mark.parametrize(
    "build",
    [
        lambda: FailStop(disk=-1, at=0.0),
        lambda: FailStop(disk=0, at=100.0, recover=100.0),
        lambda: FailSlow(disk=0, factor=0.5),
        lambda: TransientErrors(disk=0, probability=0.0),
        lambda: TransientErrors(disk=0, probability=1.5),
        lambda: HotSpot(disk=0, alpha=0.0),
        lambda: HotSpot(disk=0, alpha=1.0, start=10.0, end=5.0),
    ],
)
def test_invalid_specs_rejected(build):
    with pytest.raises(FaultPlanError):
        build()


@pytest.mark.parametrize(
    "kwargs",
    [
        {"max_retries": -1},
        {"timeout": -1.0},
        {"backoff_base": -1.0},
        {"backoff_factor": 0.5},
        {"backoff_jitter": 1.5},
        {"breaker_threshold": 0},
        {"breaker_cooldown": -1.0},
    ],
)
def test_invalid_resilience_rejected(kwargs):
    with pytest.raises(FaultPlanError):
        ResiliencePolicy(**kwargs)


def test_from_dict_rejects_malformed_documents():
    good = sample_plan().to_dict()
    for mutate in (
        lambda d: d.update(format="other"),
        lambda d: d.update(version=99),
        lambda d: d.update(surprise=1),
        lambda d: d["faults"][0].update(kind="unknown"),
        lambda d: d["faults"][0].update(surprise=1),
        lambda d: d["resilience"].update(surprise=1),
    ):
        doc = json.loads(json.dumps(good))
        mutate(doc)
        with pytest.raises(FaultPlanError):
            FaultPlan.from_dict(doc)


def test_empty_plan_is_resilience_only():
    # No faults but a policy: enables timeouts/retries/breakers on a
    # healthy machine.  Valid, serializable, targets any machine.
    plan = FaultPlan(faults=(), resilience=ResiliencePolicy(timeout=90.0))
    plan.validate_for(1)
    assert plan.max_disk == -1
    assert FaultPlan.from_dict(json.loads(plan.to_json())) == plan
