"""Run cache: slim round-trip, counters, corruption tolerance, opening."""

import json

from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import run_experiment
from repro.perf.cache import _FORMAT, CACHE_DIR_ENV, RunCache, open_cache
from repro.perf.digest import obs_digest, run_key
from repro.perf.serialize import result_to_dict, results_digest


def _entry_path(cache, config):
    return cache.cache_dir / f"run-v{_FORMAT}-{run_key(config)}.json"

TINY = dict(n_nodes=2, n_disks=2, file_blocks=64, total_reads=64)


def _config(**overrides):
    base = dict(pattern="gw", sync_style="per-proc", seed=1, **TINY)
    base.update(overrides)
    return ExperimentConfig(**base)


def test_round_trip_preserves_every_measure(tmp_path):
    config = _config()
    result = run_experiment(config)
    cache = RunCache(tmp_path)
    cache.put(config, result)
    got = cache.get(config)
    assert got is not None
    # Slim: raw handles dropped, every scalar measure identical.
    assert got.metrics is None and got.trace is None
    assert result_to_dict(got) == result_to_dict(result)
    assert results_digest([got]) == results_digest([result])
    # Restored dict fields keep integer keys.
    assert all(isinstance(k, int) for k in got.errors_by_disk)


def test_round_trip_preserves_adaptive_measures(tmp_path):
    config = _config(policy="adaptive")
    result = run_experiment(config)
    assert result.adaptive_distance_summary  # adaptive populated them
    cache = RunCache(tmp_path)
    cache.put(config, result)
    got = cache.get(config)
    assert got is not None
    assert got.adaptive_distance_summary == result.adaptive_distance_summary
    assert (
        got.adaptive_distance_trajectory
        == result.adaptive_distance_trajectory
    )
    assert got.prefetch_unused_evicted == result.prefetch_unused_evicted
    assert got.prefetch_unused_at_end == result.prefetch_unused_at_end
    assert got.unused_prefetch_rate == result.unused_prefetch_rate


def test_counters_and_summary(tmp_path):
    config = _config()
    cache = RunCache(tmp_path)
    assert cache.get(config) is None
    assert (cache.hits, cache.misses, cache.hit_rate) == (0, 1, 0.0)
    cache.put(config, run_experiment(config))
    assert cache.get(config) is not None
    assert (cache.hits, cache.misses, cache.stores) == (1, 1, 1)
    assert cache.hit_rate == 0.5
    assert "1/2 hits, 1 stored" in cache.summary()


def test_corrupt_entry_is_a_miss(tmp_path):
    config = _config()
    cache = RunCache(tmp_path)
    cache.put(config, run_experiment(config))
    entry = _entry_path(cache, config)
    entry.write_text("{not json", encoding="utf-8")
    assert cache.get(config) is None


def test_obs_round_trip(tmp_path):
    config = _config()
    result = run_experiment(config)
    cache = RunCache(tmp_path)
    cache.put(config, result)
    got = cache.get(config)
    assert got is not None
    assert got.node_attribution == result.node_attribution
    assert got.obs_digest == result.obs_digest
    assert got.obs_digest == obs_digest(got.node_attribution)


def test_corrupt_obs_section_is_a_miss(tmp_path):
    config = _config()
    cache = RunCache(tmp_path)
    cache.put(config, run_experiment(config))
    entry = _entry_path(cache, config)

    # Tampered attribution no longer matches the stored digest.
    data = json.loads(entry.read_text(encoding="utf-8"))
    data["obs"]["attribution"][0]["compute"] += 1.0
    entry.write_text(json.dumps(data), encoding="utf-8")
    assert cache.get(config) is None

    # A missing obs section entirely is also a miss.
    cache.put(config, run_experiment(config))
    data = json.loads(entry.read_text(encoding="utf-8"))
    del data["obs"]
    entry.write_text(json.dumps(data), encoding="utf-8")
    assert cache.get(config) is None


def test_entries_keyed_by_config(tmp_path):
    cache = RunCache(tmp_path)
    cache.put(_config(), run_experiment(_config()))
    assert cache.get(_config(seed=2)) is None


def test_entry_is_valid_json_with_label(tmp_path):
    config = _config()
    cache = RunCache(tmp_path)
    cache.put(config, run_experiment(config))
    entry = _entry_path(cache, config)
    data = json.loads(entry.read_text(encoding="utf-8"))
    assert data["format"] == _FORMAT
    assert data["label"] == config.label
    assert data["obs"]["digest"] == obs_digest(data["obs"]["attribution"])


def test_open_cache_precedence(tmp_path, monkeypatch):
    monkeypatch.delenv(CACHE_DIR_ENV, raising=False)
    assert open_cache() is None
    assert open_cache(tmp_path / "a").cache_dir == tmp_path / "a"
    monkeypatch.setenv(CACHE_DIR_ENV, str(tmp_path / "env"))
    assert open_cache().cache_dir == tmp_path / "env"
    # Explicit directory beats the environment; --no-cache beats both.
    assert open_cache(tmp_path / "a").cache_dir == tmp_path / "a"
    assert open_cache(tmp_path / "a", no_cache=True) is None
