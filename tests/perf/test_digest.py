"""Content-addressed identities: stability, sensitivity, fault plans."""

from repro.experiments.config import ExperimentConfig
from repro.faults.plan import FailStop, FaultPlan
from repro.perf.digest import (
    canonical_json,
    code_fingerprint,
    config_digest,
    run_key,
)

TINY = dict(n_nodes=2, n_disks=2, file_blocks=64, total_reads=64)


def _config(**overrides):
    base = dict(pattern="gw", sync_style="per-proc", seed=1, **TINY)
    base.update(overrides)
    return ExperimentConfig(**base)


def test_canonical_json_is_order_insensitive():
    assert canonical_json({"b": 1, "a": [2, 3]}) == canonical_json(
        {"a": [2, 3], "b": 1}
    )
    assert " " not in canonical_json({"a": {"b": 1}})


def test_config_digest_stable_across_equal_configs():
    assert config_digest(_config()) == config_digest(_config())


def test_config_digest_sensitive_to_every_override():
    base = config_digest(_config())
    for override in (
        {"seed": 2},
        {"pattern": "lfp", "sync_style": "none"},
        {"prefetch": False},
        {"total_reads": 65},
    ):
        assert config_digest(_config(**override)) != base, override


def test_config_digest_folds_in_fault_plan():
    plan = FaultPlan(faults=(FailStop(disk=0, at=50.0),))
    faulty = _config(faults=plan)
    assert config_digest(faulty) != config_digest(_config())
    # Two structurally equal plans digest identically.
    again = _config(faults=FaultPlan(faults=(FailStop(disk=0, at=50.0),)))
    assert config_digest(faulty) == config_digest(again)


def test_code_fingerprint_memoized_and_hexadecimal():
    fp = code_fingerprint()
    assert fp == code_fingerprint()
    assert len(fp) == 32
    int(fp, 16)  # raises if not hex


def test_run_key_distinct_from_config_digest():
    config = _config()
    assert run_key(config) != config_digest(config)
    assert run_key(config) == run_key(_config())
