"""The acceptance properties of the parallel executor.

* a ``--jobs 4`` suite reports bit-identical digests to the sequential
  one;
* a cache-warm re-run executes **zero** simulations;
* deduplication collapses identical configs within a batch.
"""

from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import run_experiment, run_pair
from repro.experiments.suite import run_suite
from repro.perf.cache import RunCache
from repro.perf.executor import (
    ExecutionStats,
    execute_audits,
    execute_pairs,
    execute_runs,
)
from repro.perf.serialize import results_digest, suite_digest
from repro.workload.suite import WorkloadSpec, balanced_compute_mean

TINY = dict(n_nodes=2, n_disks=2, file_blocks=64, total_reads=64)


def _config(**overrides):
    base = dict(pattern="gw", sync_style="per-proc", seed=1, **TINY)
    base.update(overrides)
    return ExperimentConfig(**base)


def _tiny_specs():
    return [
        WorkloadSpec(
            pattern=pattern,
            sync_style=sync,
            compute_mean=balanced_compute_mean(pattern),
        )
        for pattern, sync in (("gw", "per-proc"), ("lfp", "none"))
    ]


def test_parallel_matches_sequential_digest():
    configs = [
        _config(),
        _config(prefetch=False),
        _config(pattern="lfp", sync_style="none"),
    ]
    sequential = execute_runs(configs, jobs=1)
    parallel = execute_runs(configs, jobs=4)
    assert results_digest(sequential) == results_digest(parallel)


def test_jobs4_suite_digest_equals_sequential():
    specs = _tiny_specs()
    seq = run_suite(seed=1, specs=specs, **TINY)
    par = run_suite(seed=1, specs=specs, jobs=4, **TINY)
    assert suite_digest(seq) == suite_digest(par)


def test_results_return_in_request_order():
    configs = [
        _config(pattern="lfp", sync_style="none"),
        _config(),
        _config(prefetch=False),
    ]
    results = execute_runs(configs, jobs=4)
    assert [r.config for r in results] == configs


def test_dedup_runs_identical_configs_once():
    stats = ExecutionStats()
    results = execute_runs([_config(), _config(), _config()], stats=stats)
    assert stats.requested == 3
    assert stats.executed == 1
    assert stats.deduplicated == 2
    assert results_digest([results[0]]) == results_digest([results[1]])


def test_cache_warm_rerun_executes_nothing(tmp_path):
    specs = _tiny_specs()
    cache = RunCache(tmp_path)
    cold_stats = ExecutionStats()
    cold = run_suite(
        seed=1, specs=specs, cache=cache, stats=cold_stats, **TINY
    )
    assert cold_stats.executed > 0

    warm_stats = ExecutionStats()
    warm = run_suite(
        seed=1, specs=specs, cache=cache, stats=warm_stats, **TINY
    )
    assert warm_stats.executed == 0
    assert warm_stats.cache_hits == warm_stats.requested
    assert suite_digest(warm) == suite_digest(cold)


def test_execute_pairs_matches_run_pair():
    config = _config()
    pf, base = run_pair(config)
    ((pf2, base2),) = execute_pairs([config])
    assert pf2.config.prefetch and not base2.config.prefetch
    assert results_digest([pf, base]) == results_digest([pf2, base2])


def test_parallel_slim_results_match_inprocess_measures():
    configs = [_config(), _config(pattern="lw", sync_style="per-proc")]
    inproc = [run_experiment(c) for c in configs]
    shipped = execute_runs(configs, jobs=2)
    assert results_digest(inproc) == results_digest(shipped)


def test_execute_audits_sequential_and_parallel():
    configs = [_config(), _config().paired_baseline()]
    seq = execute_audits(configs, jobs=1)
    par = execute_audits(configs, jobs=2)
    assert [v["identical"] for v in seq] == [True, True]
    assert seq == par


def test_stats_summary_mentions_everything():
    stats = ExecutionStats(
        requested=4, executed=2, cache_hits=1, deduplicated=1, jobs=3
    )
    text = stats.summary()
    for fragment in ("4 runs", "2 executed", "jobs=3", "1 from cache"):
        assert fragment in text
