"""Bench harness smoke: report shape, self-checks, baseline comparison.

The real phases run here against a monkeypatched tiny sizing so the
test measures the plumbing, not the hardware.
"""

import json

import pytest

import repro.perf.bench as bench
from repro.perf.bench import compare_baseline, run_bench
from repro.workload.suite import WorkloadSpec, balanced_compute_mean

TINY = {"n_nodes": 2, "n_disks": 2, "file_blocks": 64, "total_reads": 64}


@pytest.fixture()
def tiny_bench(monkeypatch):
    monkeypatch.setattr(bench, "_QUICK_OVERRIDES", TINY)
    monkeypatch.setattr(
        bench,
        "_quick_specs",
        lambda: [
            WorkloadSpec(
                pattern="gw",
                sync_style="per-proc",
                compute_mean=balanced_compute_mean("gw"),
            )
        ],
    )


def test_bench_report_and_json(tiny_bench, tmp_path):
    report = run_bench(
        label="test", quick=True, jobs=2, seed=1, output_dir=tmp_path
    )
    assert report["ok"] is True
    assert report["suite"]["digests_match"]
    assert report["cache"]["digests_match"]
    assert report["cache"]["warm_executed"] == 0
    assert report["cache"]["warm_hit_rate"] == 1.0
    assert report["kernel"]["events_per_s"] > 0
    # The scratch cache is cleaned up; only the report remains.
    assert sorted(p.name for p in tmp_path.iterdir()) == [
        "BENCH_test.json"
    ]
    on_disk = json.loads((tmp_path / "BENCH_test.json").read_text())
    assert on_disk["label"] == "test"
    assert on_disk["kernel"]["n_events"] == report["kernel"]["n_events"]


def test_compare_baseline_flags_only_real_regressions(tiny_bench, tmp_path):
    report = run_bench(label="cmp", quick=True, jobs=1, output_dir=tmp_path)
    # Against itself: no regression.
    assert compare_baseline(report, report) == []
    # A baseline 10x faster than this host: regression on both axes.
    fast = json.loads(json.dumps(report))
    fast["kernel"]["events_per_s"] *= 10
    fast["suite"]["sequential_events_per_s"] *= 10
    failures = compare_baseline(report, fast, max_regress=0.20)
    assert len(failures) == 2
    # A generous tolerance forgives anything.
    assert compare_baseline(report, fast, max_regress=0.95) == []


def test_profile_writes_cumtime_report(tiny_bench, tmp_path):
    report = run_bench(
        label="prof", quick=True, jobs=1, output_dir=tmp_path, profile=True
    )
    assert report["ok"] is True
    profile_path = tmp_path / "BENCH_prof_profile.txt"
    assert profile_path.exists()
    text = profile_path.read_text()
    assert "cumulative" in text  # sorted by cumtime
    assert "run_experiment" in text  # the kernel phase was profiled


def test_single_core_parallel_speedup_is_informational(
    tiny_bench, tmp_path, monkeypatch
):
    # On a 1-cpu host the parallel speedup is reported but flagged, and
    # baseline gating must skip it (a pool of one can't beat sequential).
    monkeypatch.setattr(bench.os, "cpu_count", lambda: 1)
    report = run_bench(label="uni", quick=True, jobs=2, output_dir=tmp_path)
    assert report["suite"]["parallel_informational"] is True
    assert "parallel_speedup" in report["suite"]

    slow = json.loads(json.dumps(report))
    slow["suite"]["parallel_speedup"] *= 10  # would regress if gated
    assert compare_baseline(report, slow) == []


def test_multi_core_parallel_speedup_is_gated(tiny_bench, tmp_path, monkeypatch):
    monkeypatch.setattr(bench.os, "cpu_count", lambda: 8)
    report = run_bench(label="multi", quick=True, jobs=2, output_dir=tmp_path)
    assert report["suite"]["parallel_informational"] is False
    fast = json.loads(json.dumps(report))
    fast["suite"]["parallel_speedup"] = report["suite"]["parallel_speedup"] * 10
    failures = compare_baseline(report, fast, max_regress=0.20)
    assert any("parallel speedup" in line for line in failures)


@pytest.fixture()
def tiny_scheduler_bench(monkeypatch):
    monkeypatch.setattr(bench, "_SCHED_OVERRIDES", TINY)
    monkeypatch.setattr(bench, "_QUICK_OVERRIDES", TINY)
    monkeypatch.setattr(bench, "_MICRO_DEPTH", 64)
    monkeypatch.setattr(bench, "_MICRO_OPS", 500)


def test_scheduler_bench_report(tiny_scheduler_bench, tmp_path):
    report = bench.run_scheduler_bench(
        label="sched", scales=(4, 8), reads_per_node=4, output_dir=tmp_path
    )
    assert report["ok"] is True
    assert report["equivalence"]["digests_match"] is True
    tags = {
        (entry["scheduler"], entry["batch_timeouts"])
        for entry in report["matrix"]
    }
    assert tags == {
        ("heap", False), ("heap", True),
        ("calendar", False), ("calendar", True),
    }
    # Batching never grows the popped-event population (at this tiny
    # sizing two nodes may simply never arm the same instant twice).
    by_tag = {
        (e["scheduler"], e["batch_timeouts"]): e["n_events"]
        for e in report["matrix"]
    }
    assert by_tag[("heap", True)] <= by_tag[("heap", False)]
    assert by_tag[("heap", False)] == by_tag[("calendar", False)]
    assert {m["backend"] for m in report["micro"]} == {"heap", "calendar"}
    for sweep in report["scales"].values():
        assert [e["n_nodes"] for e in sweep["entries"]] == [4, 8]
        for entry in sweep["entries"]:
            assert entry["bottleneck"] in entry["attribution_mean_ms"]
    on_disk = json.loads((tmp_path / "BENCH_sched.json").read_text())
    assert on_disk["equivalence"]["digests_match"] is True


def test_compare_scheduler_baseline(tiny_scheduler_bench, tmp_path):
    report = bench.run_scheduler_bench(
        label="schedcmp", scales=(4,), reads_per_node=4, output_dir=tmp_path
    )
    assert bench.compare_scheduler_baseline(report, report) == []
    fast = json.loads(json.dumps(report))
    for entry in fast["matrix"]:
        entry["events_per_s"] *= 10
    failures = bench.compare_scheduler_baseline(report, fast)
    assert len(failures) == 4  # every backend x batching cell regressed
    broken = json.loads(json.dumps(report))
    broken["equivalence"]["digests_match"] = False
    # Divergence is judged from the *report*, not the baseline.
    assert bench.compare_scheduler_baseline(broken, report) == [
        "backend digests diverge (heap != calendar)"
    ]
