"""Bench harness smoke: report shape, self-checks, baseline comparison.

The real phases run here against a monkeypatched tiny sizing so the
test measures the plumbing, not the hardware.
"""

import json

import pytest

import repro.perf.bench as bench
from repro.perf.bench import compare_baseline, run_bench
from repro.workload.suite import WorkloadSpec, balanced_compute_mean

TINY = {"n_nodes": 2, "n_disks": 2, "file_blocks": 64, "total_reads": 64}


@pytest.fixture()
def tiny_bench(monkeypatch):
    monkeypatch.setattr(bench, "_QUICK_OVERRIDES", TINY)
    monkeypatch.setattr(
        bench,
        "_quick_specs",
        lambda: [
            WorkloadSpec(
                pattern="gw",
                sync_style="per-proc",
                compute_mean=balanced_compute_mean("gw"),
            )
        ],
    )


def test_bench_report_and_json(tiny_bench, tmp_path):
    report = run_bench(
        label="test", quick=True, jobs=2, seed=1, output_dir=tmp_path
    )
    assert report["ok"] is True
    assert report["suite"]["digests_match"]
    assert report["cache"]["digests_match"]
    assert report["cache"]["warm_executed"] == 0
    assert report["cache"]["warm_hit_rate"] == 1.0
    assert report["kernel"]["events_per_s"] > 0
    # The scratch cache is cleaned up; only the report remains.
    assert sorted(p.name for p in tmp_path.iterdir()) == [
        "BENCH_test.json"
    ]
    on_disk = json.loads((tmp_path / "BENCH_test.json").read_text())
    assert on_disk["label"] == "test"
    assert on_disk["kernel"]["n_events"] == report["kernel"]["n_events"]


def test_compare_baseline_flags_only_real_regressions(tiny_bench, tmp_path):
    report = run_bench(label="cmp", quick=True, jobs=1, output_dir=tmp_path)
    # Against itself: no regression.
    assert compare_baseline(report, report) == []
    # A baseline 10x faster than this host: regression on both axes.
    fast = json.loads(json.dumps(report))
    fast["kernel"]["events_per_s"] *= 10
    fast["suite"]["sequential_events_per_s"] *= 10
    failures = compare_baseline(report, fast, max_regress=0.20)
    assert len(failures) == 2
    # A generous tolerance forgives anything.
    assert compare_baseline(report, fast, max_regress=0.95) == []
