"""Seed-robustness of the paper's headline claims (reduced scale).

The benchmarks assert the claims once at the paper's sizing; these tests
re-assert the load-bearing ones across several seeds at ~1/4 scale, so a
lucky seed cannot carry the reproduction.
"""

import pytest

from repro.experiments import ExperimentConfig, run_pair

SCALE = dict(n_nodes=8, n_disks=8, file_blocks=800, total_reads=800)
SEEDS = (11, 22, 33, 44, 55)


@pytest.mark.parametrize("seed", SEEDS)
def test_gw_prefetching_always_wins(seed):
    pf, base = run_pair(
        ExperimentConfig(
            pattern="gw", sync_style="per-proc", seed=seed, **SCALE
        )
    )
    assert pf.total_time < base.total_time
    assert pf.avg_read_time < base.avg_read_time
    assert pf.hit_ratio > 0.8


@pytest.mark.parametrize("seed", SEEDS)
def test_lw_prefetching_always_wins(seed):
    """lw wins at every seed.  (At 8 nodes the margin is structurally
    smaller than the paper's 20-node ~50-70%: with fewer sharers the
    baseline already hits 7 of 8 accesses, so we assert a consistent
    ~>8% total-time win plus a strong read-time win.)"""
    pf, base = run_pair(
        ExperimentConfig(
            pattern="lw", sync_style="per-proc", compute_mean=10.0,
            seed=seed, **SCALE
        )
    )
    total_reduction = (base.total_time - pf.total_time) / base.total_time
    read_reduction = (
        base.avg_read_time - pf.avg_read_time
    ) / base.avg_read_time
    assert total_reduction > 0.08
    assert read_reduction > 0.25


@pytest.mark.parametrize("seed", SEEDS)
def test_disk_response_worsens_under_prefetch(seed):
    pf, base = run_pair(
        ExperimentConfig(
            pattern="gw", sync_style="none", compute_mean=0.0,
            seed=seed, **SCALE
        )
    )
    assert pf.disk_response_mean >= base.disk_response_mean


@pytest.mark.parametrize("seed", SEEDS[:3])
def test_hit_ratio_gap_between_prefetch_and_baseline(seed):
    pf, base = run_pair(
        ExperimentConfig(
            pattern="gfp", sync_style="total", total_k=80, seed=seed,
            **SCALE
        )
    )
    assert pf.hit_ratio > base.hit_ratio + 0.5
