"""Fault-lifecycle lanes: resilience state rendered as obs spans.

A faulted, observed run grows one ``("fault", disk)`` lane per disk:
breaker open/half-open segments replayed from the fault event log,
fail-slow windows from the detector, and zero-length markers for
individual error/timeout/retry events.  The lane is assembled after the
run from state the run already produced, so observing a faulted run
stays schedule-neutral — the same passivity tentpole the rest of the
obs suite pins down.
"""

import pytest

from repro.analysis.audit import run_with_audit
from repro.experiments.config import ExperimentConfig
from repro.faults import (
    FailSlow,
    FaultPlan,
    ResiliencePolicy,
    TransientErrors,
)
from repro.obs import run_with_obs, to_perfetto, validate_perfetto

PLAN = FaultPlan(
    faults=(
        TransientErrors(disk=2, probability=0.4, start=200.0, end=1200.0),
        FailSlow(disk=1, factor=5.0, start=300.0, end=1300.0),
    ),
    resilience=ResiliencePolicy(
        timeout=240.0, max_retries=40, backoff_base=10.0, backoff_max=120.0
    ),
)


def _config(faults=PLAN, **overrides):
    base = dict(
        pattern="lw", sync_style="none", policy="adaptive",
        n_nodes=4, n_disks=4, file_blocks=200, total_reads=200,
        faults=faults, record_trace=False,
    )
    base.update(overrides)
    return ExperimentConfig(**base)


@pytest.fixture(scope="module")
def faulted_obs():
    return run_with_obs(_config())


def test_faulted_run_grows_fault_lanes(faulted_obs):
    result, data = faulted_obs
    assert data.fault_disks == [0, 1, 2, 3]
    fault_spans = [s for s in data.spans.spans if s.track[0] == "fault"]
    assert fault_spans
    cats = {s.cat for s in fault_spans}
    # The transient window produced errors, retries, and at least one
    # breaker trip; all of them land on the victim disk's lane.
    assert {"fault:error", "fault:retry", "fault:breaker"} <= cats
    assert all(s.track[1] in (1, 2) for s in fault_spans)


def test_markers_are_instants_and_segments_have_width(faulted_obs):
    _, data = faulted_obs
    for span in data.spans.spans:
        if span.track[0] != "fault":
            continue
        if span.cat in ("fault:breaker", "fault:failslow"):
            assert span.duration > 0.0
        else:
            assert span.duration == 0.0
            assert span.args["attempt"] >= 0


def test_breaker_segments_match_degraded_accounting(faulted_obs):
    """Each breaker segment lies inside the run's degraded intervals
    (the same machinery feeds ``time_degraded``)."""
    result, data = faulted_obs
    assert result.breaker_opens > 0
    segments = [
        s for s in data.spans.spans if s.cat == "fault:breaker"
    ]
    assert segments
    assert sum(s.duration for s in segments) <= result.time_degraded


def test_healthy_run_has_no_fault_lane():
    _, data = run_with_obs(_config(faults=None))
    assert data.fault_disks == []
    assert not [s for s in data.spans.spans if s.track[0] == "fault"]


def test_perfetto_export_names_fault_threads(faulted_obs):
    _, data = faulted_obs
    payload = to_perfetto(data)
    assert validate_perfetto(payload) == []
    names = [
        e["args"]["name"]
        for e in payload["traceEvents"]
        if e["ph"] == "M" and e["name"] == "thread_name"
    ]
    for disk_id in data.fault_disks:
        assert f"fault disk {disk_id}" in names


def test_observing_a_faulted_run_is_schedule_neutral():
    config = _config()
    off = run_with_audit(config)
    on = run_with_audit(config, obs=True)
    assert on.trace_digest == off.trace_digest
    assert on.result.fault_digest == off.result.fault_digest
