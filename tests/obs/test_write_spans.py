"""Writeback lanes in the obs layer.

A read-write observed run grows ``("writeback", node)`` lanes (flusher
actions and throttle stalls), write spans on the node lanes, disk write
spans for free via the request kind, and the ``cache.dirty`` gauge.
Read-only runs must grow none of it — and observing an rw run must not
change its event trace (the same passivity tentpole as the rest of the
obs suite).
"""

import pytest

from repro.analysis.audit import run_with_audit
from repro.experiments.config import ExperimentConfig
from repro.obs import run_with_obs, to_perfetto, validate_perfetto


def _config(pattern, **overrides):
    base = dict(
        pattern=pattern, sync_style="none", policy="oracle",
        n_nodes=4, n_disks=4, file_blocks=160, total_reads=160,
        record_trace=False,
    )
    base.update(overrides)
    return ExperimentConfig(**base)


@pytest.fixture(scope="module")
def rw_obs():
    return run_with_obs(_config("lfp-rw"))


def test_rw_run_grows_writeback_lanes(rw_obs):
    result, data = rw_obs
    assert data.flusher_nodes == [0, 1, 2, 3]
    wb_spans = [s for s in data.spans.spans if s.track[0] == "writeback"]
    assert wb_spans
    cats = {s.cat for s in wb_spans}
    assert "writeback:action" in cats
    assert all(s.track[1] in range(4) for s in wb_spans)


def test_rw_run_has_write_spans_on_node_lanes(rw_obs):
    result, data = rw_obs
    writes = [
        s for s in data.spans.spans
        if s.track[0] == "node" and s.cat.startswith("write:")
    ]
    assert len(writes) == result.total_writes
    assert all(s.name.startswith("write b") for s in writes)


def test_rw_run_has_disk_write_spans(rw_obs):
    result, data = rw_obs
    disk_writes = [
        s for s in data.spans.spans
        if s.track[0] == "disk"
        and s.cat == "disk:service"
        and s.args.get("kind") == "write"
    ]
    # Every completed flush crossed a disk.
    assert len(disk_writes) >= result.flush_count > 0


def test_dirty_gauge_sampled(rw_obs):
    result, data = rw_obs
    series = data.timelines.find("cache.dirty")
    assert series is not None
    # Boundary-sampled, so it may miss the instantaneous peak — but it
    # must see dirtiness, and never more than the metrics high-water.
    peak = max(v for _, v in series.samples)
    assert 0 < peak <= result.dirty_peak


def test_rw_perfetto_export_is_valid(rw_obs):
    _, data = rw_obs
    payload = to_perfetto(data)
    assert validate_perfetto(payload) == []
    names = {
        e["args"]["name"]
        for e in payload["traceEvents"]
        if e["ph"] == "M" and e["name"] == "thread_name"
    }
    assert any(n.startswith("flusher ") for n in names)


def test_observing_an_rw_run_is_passive():
    config = _config("gw-rw")
    off = run_with_audit(config)
    on = run_with_audit(config, obs=True)
    assert on.trace_digest == off.trace_digest


def test_read_only_run_grows_no_write_lanes():
    _, data = run_with_obs(_config("lfp"))
    assert data.flusher_nodes == []
    assert not [
        s for s in data.spans.spans
        if s.track[0] == "writeback" or s.cat.startswith("write")
    ]
    # The dirty gauge exists (it is wired unconditionally) but never
    # leaves zero on a read-only run.
    series = data.timelines.find("cache.dirty")
    assert all(v == 0.0 for _, v in series.samples)
