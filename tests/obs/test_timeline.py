"""Timeline instruments and the boundary-crossing sampler."""

import pytest

from repro.obs import Histogram, TimelineRegistry, TimelineSampler


def test_counter_monotone():
    registry = TimelineRegistry()
    counter = registry.counter("reads")
    counter.inc()
    counter.inc(2.0)
    assert counter.value == 3.0
    with pytest.raises(ValueError):
        counter.inc(-1.0)


def test_histogram_buckets_and_mean():
    hist = Histogram("lat", bounds=(10.0, 30.0))
    for value in (5.0, 10.0, 29.0, 31.0):
        hist.observe(value)
    # <=10 twice, <=30 once, overflow once.
    assert hist.counts == [2, 1, 1]
    assert hist.total == 4
    assert hist.mean == pytest.approx(75.0 / 4)


def test_histogram_rejects_unsorted_bounds():
    with pytest.raises(ValueError):
        Histogram("bad", bounds=(10.0, 5.0))
    with pytest.raises(ValueError):
        Histogram("dup", bounds=(5.0, 5.0))


def test_gauge_sampled_through_registry():
    registry = TimelineRegistry()
    state = {"depth": 0.0}
    series = registry.register_gauge("queue", lambda: state["depth"])
    registry.sample_all(50.0)
    state["depth"] = 3.0
    registry.sample_all(100.0)
    assert series.samples == [(50.0, 0.0), (100.0, 3.0)]


def test_registration_order_is_export_order():
    registry = TimelineRegistry()
    registry.counter("b")
    registry.register_gauge("a", lambda: 0.0)
    registry.histogram("c")
    # Gauges, then counters, then histograms — never sorted by name.
    assert [s.name for s in registry.series] == ["a", "b", "c"]
    assert registry.find("c").kind == "histogram"
    assert registry.find("nope") is None


def test_sampler_crosses_boundaries():
    registry = TimelineRegistry()
    counter = registry.counter("n")
    sampler = TimelineSampler(registry, interval=50.0)
    series = registry.series[0]

    sampler(10.0, 0, 0, None)  # before the first boundary: no sample
    assert series.samples == []
    counter.inc()
    sampler(60.0, 0, 1, None)  # crosses t=50
    assert series.samples == [(50.0, 1.0)]
    sampler(230.0, 0, 2, None)  # crosses 100, 150, 200 in one hop
    assert [t for t, _ in series.samples] == [50.0, 100.0, 150.0, 200.0]
    sampler.finalize(231.5)
    assert series.samples[-1] == (231.5, 1.0)
    assert sampler.samples_taken == 5


def test_sampler_rejects_nonpositive_interval():
    with pytest.raises(ValueError):
        TimelineSampler(TimelineRegistry(), interval=0.0)
