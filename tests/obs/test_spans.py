"""Span log: lifecycle, nesting, monotonicity, and error paths."""

import pytest

from repro.obs import ObsError, SpanLog

TRACK = ("node", 0)


def test_add_records_a_closed_span():
    log = SpanLog()
    span = log.add(TRACK, "read", "read:ready", 1.0, 3.5, block=7)
    assert (span.start, span.end, span.duration) == (1.0, 3.5, 2.5)
    assert span.args == {"block": 7}
    assert log.spans == [span]


def test_begin_end_nest_lifo_per_track():
    log = SpanLog()
    log.begin(TRACK, "outer", "cat", 0.0)
    log.begin(TRACK, "inner", "cat", 1.0)
    assert log.open_depth(TRACK) == 2
    inner = log.end(TRACK, 2.0)
    outer = log.end(TRACK, 3.0)
    assert (inner.name, outer.name) == ("inner", "outer")
    assert inner.start == 1.0 and outer.end == 3.0
    assert log.open_depth(TRACK) == 0
    log.check_closed()  # no open spans left


def test_tracks_are_independent():
    log = SpanLog()
    log.begin(("node", 0), "a", "cat", 0.0)
    log.begin(("disk", 1), "b", "cat", 0.5)
    log.end(("node", 0), 1.0)
    assert log.open_depth(("disk", 1)) == 1
    with pytest.raises(ObsError):
        log.check_closed()


def test_end_without_begin_raises():
    log = SpanLog()
    with pytest.raises(ObsError):
        log.end(TRACK, 1.0)


def test_negative_duration_raises():
    log = SpanLog()
    with pytest.raises(ObsError):
        log.add(TRACK, "bad", "cat", 5.0, 4.0)


def test_time_reversal_within_a_track_raises():
    log = SpanLog()
    log.begin(TRACK, "first", "cat", 0.0)
    log.end(TRACK, 10.0)
    with pytest.raises(ObsError):
        log.begin(TRACK, "earlier", "cat", 5.0)


def test_sim_time_monotone_per_track_allows_other_tracks_behind():
    # Per-track clocks: a disk track may lag a node track.
    log = SpanLog()
    log.begin(("node", 0), "a", "cat", 0.0)
    log.end(("node", 0), 100.0)
    log.begin(("disk", 0), "b", "cat", 10.0)
    log.end(("disk", 0), 20.0)
    assert len(log.spans) == 2


def test_add_is_retroactive_and_skips_the_track_clock():
    # Completion observers record spans after the fact (start = now -
    # latency), and finalize() adds idle spans for the whole run last —
    # so add() must accept starts behind previously recorded ends.
    log = SpanLog()
    log.add(TRACK, "late", "cat", 50.0, 60.0)
    log.add(TRACK, "early", "cat", 0.0, 10.0)
    assert [s.name for s in log.by_track(TRACK)] == ["late", "early"]


def test_tracks_listing_is_sorted():
    log = SpanLog()
    log.add(("node", 1), "a", "cat", 0.0, 1.0)
    log.add(("disk", 0), "b", "cat", 0.0, 1.0)
    log.add(("node", 0), "c", "cat", 0.0, 1.0)
    assert log.tracks() == [("disk", 0), ("node", 0), ("node", 1)]
    assert [s.name for s in log.by_track(("node", 0))] == ["c"]
