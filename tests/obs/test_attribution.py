"""Bottleneck attribution: the decomposition must account for every ms."""

import pytest

from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import run_experiment
from repro.obs.attribution import (
    COMPONENTS,
    attribute_run,
    attribution_digest,
    dominant_component,
)

TINY = dict(n_nodes=4, n_disks=4, file_blocks=200, total_reads=200)


def _run(**overrides):
    base = dict(pattern="grp", sync_style="none", seed=3, **TINY)
    base.update(overrides)
    return run_experiment(ExperimentConfig(**base))


@pytest.mark.parametrize("pattern,sync", [
    ("grp", "none"), ("lfp", "portion"), ("gw", "per-proc"),
])
def test_components_sum_to_wall_per_node(pattern, sync):
    result = _run(pattern=pattern, sync_style=sync)
    assert len(result.node_attribution) == TINY["n_nodes"]
    for entry in result.node_attribution:
        total = sum(entry[name] for name in COMPONENTS)
        assert total == pytest.approx(entry["wall"], abs=1e-6)
        assert all(entry[name] >= -1e-9 for name in COMPONENTS)


def test_baseline_has_no_daemon_theft():
    result = _run(prefetch=False)
    assert all(e["daemon_theft"] == 0.0 for e in result.node_attribution)


def test_unsynchronized_run_has_no_sync_wait():
    result = _run(sync_style="none")
    assert all(e["sync_wait"] == 0.0 for e in result.node_attribution)


def test_obs_digest_matches_attribution_payload():
    result = _run()
    assert result.obs_digest == attribution_digest(result.node_attribution)
    # Same config, same digest; different seed, different payload.
    assert _run().obs_digest == result.obs_digest
    assert _run(seed=4).obs_digest != result.obs_digest


def test_dominant_component_ties_break_in_component_order():
    entry = {"compute": 5.0, "demand_stall": 5.0, "sync_wait": 1.0,
             "daemon_theft": 0.0}
    assert dominant_component(entry) == "compute"


def test_attribute_run_length_mismatch_raises():
    with pytest.raises(ValueError):
        attribute_run([], [1.0, 2.0], 0.0)
