"""Exporters: Perfetto schema, CSV alignment, ASCII rendering."""

import json

import pytest

from repro.experiments.config import ExperimentConfig
from repro.obs import (
    render_ascii,
    run_with_obs,
    spans_to_csv,
    timelines_to_csv,
    to_perfetto,
    validate_perfetto,
)

TINY = dict(n_nodes=3, n_disks=2, file_blocks=120, total_reads=120)


@pytest.fixture(scope="module")
def observed():
    config = ExperimentConfig(
        pattern="grp", sync_style="none", seed=3, **TINY
    )
    return run_with_obs(config)


def test_perfetto_validates_and_round_trips_json(observed):
    _, data = observed
    payload = to_perfetto(data)
    assert validate_perfetto(payload) == []
    # Survives JSON serialization (what `obs export` writes).
    assert validate_perfetto(json.loads(json.dumps(payload))) == []
    assert payload["displayTimeUnit"] == "ms"
    assert payload["otherData"]["obs_digest"] == data.digest


def test_perfetto_one_thread_track_per_node_disk_daemon(observed):
    _, data = observed
    payload = to_perfetto(data)
    threads = {
        (e["pid"], e["tid"]): e["args"]["name"]
        for e in payload["traceEvents"]
        if e["ph"] == "M" and e["name"] == "thread_name"
    }
    names = set(threads.values())
    for node_id in range(TINY["n_nodes"]):
        assert f"node {node_id}" in names
        assert f"daemon {node_id}" in names
    for disk_id in range(TINY["n_disks"]):
        assert f"disk {disk_id}" in names


def test_validator_catches_violations():
    assert validate_perfetto([]) == ["top level: expected a JSON object"]
    assert validate_perfetto({}) == ["traceEvents: expected a list"]
    bad = {"traceEvents": [
        {"name": "x", "ph": "Z", "pid": 1},
        {"name": "", "ph": "C", "pid": 1, "ts": 0, "args": {"g": 1}},
        {"name": "x", "ph": "X", "pid": 1, "tid": 9, "ts": -5, "dur": 1},
    ]}
    errors = validate_perfetto(bad)
    assert any("unknown phase" in e for e in errors)
    assert any("missing event name" in e for e in errors)
    assert any("ts must be" in e for e in errors)
    assert any("no thread_name" in e for e in errors)


def test_timelines_csv_rows_align(observed):
    _, data = observed
    text = timelines_to_csv(data.timelines)
    lines = text.strip().splitlines()
    header = lines[0].split(",")
    assert header[0] == "time_ms"
    assert "cache.occupancy" in header
    assert "reads.completed" in header
    widths = {len(line.split(",")) for line in lines}
    assert widths == {len(header)}
    assert len(lines) > 2  # at least a couple of sample rows


def test_spans_csv_has_every_span(observed):
    _, data = observed
    lines = spans_to_csv(data.spans).strip().splitlines()
    assert lines[0].startswith("track_kind,track_id,cat,name")
    assert len(lines) == 1 + len(data.spans.spans)


def test_ascii_render_has_one_lane_per_track(observed):
    _, data = observed
    text = render_ascii(data, width=40)
    lines = text.splitlines()
    assert len(lines) == 2 + len(data.spans.tracks())  # header + legend
    assert all("|" in lane for lane in lines[2:])
    node_only = render_ascii(data, width=40, kinds=("node",))
    assert len(node_only.splitlines()) == 2 + TINY["n_nodes"]
    with pytest.raises(ValueError):
        render_ascii(data, width=4)
