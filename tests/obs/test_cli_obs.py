"""CLI smoke tests for the obs verbs and the --obs flags."""

import json

from repro.cli import main

SIZING = ["--nodes", "2", "--disks", "2", "--file-blocks", "80",
          "--reads", "80", "--seed", "2"]


def test_obs_export_perfetto(tmp_path, capsys):
    out = tmp_path / "trace.json"
    code = main(["obs", "export", "-o", str(out), "--validate"] + SIZING)
    assert code == 0
    payload = json.loads(out.read_text(encoding="utf-8"))
    assert payload["displayTimeUnit"] == "ms"
    assert len(payload["traceEvents"]) > 10
    assert "wrote" in capsys.readouterr().out


def test_obs_export_csv(tmp_path, capsys):
    out = tmp_path / "timelines.csv"
    code = main(
        ["obs", "export", "-o", str(out), "--format", "csv"] + SIZING
    )
    assert code == 0
    assert out.read_text(encoding="utf-8").startswith("time_ms,")
    spans = tmp_path / "timelines.csv.spans.csv"
    assert spans.exists()
    assert "obs digest" in capsys.readouterr().out


def test_obs_timeline(tmp_path, capsys):
    csv_out = tmp_path / "tl.csv"
    code = main(
        ["obs", "timeline", "--width", "32", "--csv", str(csv_out)]
        + SIZING
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "legend:" in out
    assert "node" in out and "disk" in out
    assert csv_out.exists()


def test_obs_attribute(capsys):
    code = main(["obs", "attribute"] + SIZING)
    assert code == 0
    out = capsys.readouterr().out
    assert "wall-time attribution [no-prefetch]" in out
    assert "wall-time attribution [prefetch]" in out
    assert "dominant cost:" in out


def test_run_with_obs_flag(capsys):
    code = main(
        ["run", "--obs", "--pattern", "grp", "--sync", "none"] + SIZING
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "wall-time attribution" in out
    assert "dominant cost:" in out


def test_audit_with_obs_flag(capsys):
    code = main(
        ["audit", "--obs", "--pattern", "grp", "--sync", "none"] + SIZING
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "observability recorder" in out
    assert "PASS" in out
