"""The tentpole guarantee: observation never perturbs the schedule."""

import pytest

from repro.analysis.audit import run_twice_and_diff, run_with_audit
from repro.experiments.config import ExperimentConfig

TINY = dict(n_nodes=2, n_disks=2, file_blocks=100, total_reads=100)


def _config(**overrides):
    base = dict(pattern="grp", sync_style="none", seed=3, **TINY)
    base.update(overrides)
    return ExperimentConfig(**base)


@pytest.mark.parametrize("pattern,sync", [
    ("grp", "none"), ("lfp", "portion"),
])
def test_obs_on_equals_obs_off_trace_digest(pattern, sync):
    config = _config(pattern=pattern, sync_style=sync)
    off = run_with_audit(config)
    on = run_with_audit(config, obs=True)
    assert on.trace_digest == off.trace_digest
    assert on.n_events == off.n_events
    assert off.obs_data is None
    assert on.obs_data is not None and len(on.obs_data.spans.spans) > 0


def test_run_twice_with_obs_is_identical():
    report = run_twice_and_diff(_config(), obs=True)
    assert report.identical
    assert report.first.obs_data is not None
    assert report.second.obs_data is not None
    # Both runs also recorded identical attribution payloads.
    assert (
        report.first.result.obs_digest == report.second.result.obs_digest
    )


def test_obs_spans_all_closed_at_finalize():
    report = run_with_audit(_config(), obs=True)
    report.obs_data.spans.check_closed()
