"""Property-based tests over the whole simulated system.

Hypothesis drives small random experiment configurations end to end and
asserts structural invariants that must hold for *any* workload:
conservation of references, cache consistency, metric coherence, and
deterministic replay.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.experiments import ExperimentConfig, run_experiment

PATTERNS = ("lfp", "lrp", "lw", "gfp", "grp", "gw")
SYNCS = ("none", "per-proc", "total", "portion")


def config_strategy():
    def build(pattern, sync, n_nodes, compute, prefetch, lead, seed):
        if pattern == "lw" and sync == "portion":
            sync = "total"
        total_reads = n_nodes * 20
        return ExperimentConfig(
            pattern=pattern,
            sync_style=sync,
            compute_mean=compute,
            prefetch=prefetch,
            lead=lead,
            n_nodes=n_nodes,
            n_disks=n_nodes,
            file_blocks=max(total_reads, 40),
            total_reads=total_reads,
            per_proc_k=5,
            total_k=20,
            seed=seed,
        )

    return st.builds(
        build,
        pattern=st.sampled_from(PATTERNS),
        sync=st.sampled_from(SYNCS),
        n_nodes=st.integers(min_value=2, max_value=5),
        compute=st.sampled_from([0.0, 5.0, 20.0]),
        prefetch=st.booleans(),
        lead=st.sampled_from([0, 3]),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
    )


@given(config=config_strategy())
@settings(max_examples=25, deadline=None)
def test_every_configuration_conserves_references(config):
    """All references are consumed exactly once and the metrics add up."""
    result = run_experiment(config)
    m = result.metrics

    # Conservation: every reference became exactly one access.
    assert result.total_accesses == config.effective_total_reads
    assert m.hits_ready + m.hits_unready + m.misses == result.total_accesses
    assert m.read_times.count == result.total_accesses

    # Hit-wait is recorded for exactly the unready hits.
    assert m.hit_wait.count == m.hits_unready

    # Fetch accounting: every miss is a demand fetch; prefetches are
    # bounded by the number of references (each reference is claimed at
    # most once per scope).
    assert m.blocks_demand_fetched == m.misses
    assert result.blocks_prefetched <= config.effective_total_reads
    if not config.prefetch:
        assert result.blocks_prefetched == 0
        assert m.hits_unready + m.hits_ready <= result.total_accesses

    # Ratios are coherent.
    assert 0.0 <= result.hit_ratio <= 1.0
    assert abs(result.hit_ratio + result.miss_ratio - 1.0) < 1e-9
    assert (
        abs(
            result.ready_hit_fraction
            + result.unready_hit_fraction
            + result.miss_ratio
            - 1.0
        )
        < 1e-9
    )

    # Time sanity: a block read is never faster than the physical floor
    # and the run is at least as long as the worst single read.
    assert m.read_times.min >= 0.0
    assert result.total_time >= m.read_times.max


@given(config=config_strategy())
@settings(max_examples=10, deadline=None)
def test_replay_determinism(config):
    """The same configuration produces bit-identical results."""
    a = run_experiment(config)
    b = run_experiment(config)
    assert a.total_time == b.total_time
    assert a.metrics.read_times.samples == b.metrics.read_times.samples
    assert a.prefetch_outcomes == b.prefetch_outcomes


@given(
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    pattern=st.sampled_from(PATTERNS),
)
@settings(max_examples=15, deadline=None)
def test_prefetching_never_loses_hits(seed, pattern):
    """With the oracle policy, prefetching never *reduces* the hit ratio
    relative to the no-prefetch baseline (it may only add hits)."""
    common = dict(
        pattern=pattern,
        sync_style="per-proc",
        per_proc_k=5,
        n_nodes=3,
        n_disks=3,
        file_blocks=90,
        total_reads=60,
        compute_mean=5.0,
        seed=seed,
    )
    pf = run_experiment(ExperimentConfig(prefetch=True, **common))
    base = run_experiment(ExperimentConfig(prefetch=False, **common))
    assert pf.hit_ratio >= base.hit_ratio - 1e-9


@given(seed=st.integers(min_value=0, max_value=2**31 - 1))
@settings(max_examples=10, deadline=None)
def test_disk_conservation(seed):
    """Disks serve exactly the fetches issued (demand + prefetch), modulo
    prefetches still in flight at run end."""
    result = run_experiment(
        ExperimentConfig(
            pattern="gw",
            n_nodes=4,
            n_disks=4,
            file_blocks=80,
            total_reads=80,
            compute_mean=5.0,
            seed=seed,
        )
    )
    issued = result.blocks_demand_fetched + result.blocks_prefetched
    # All demand fetches completed (the run waits on them); at most a
    # handful of prefetch I/Os may still be queued at the instant the last
    # application exits.
    assert result.metrics.blocks_demand_fetched <= issued
    assert issued >= result.total_accesses * result.miss_ratio
