"""Unit tests for the figure generators on a miniature suite.

A scaled-down machine (6 nodes, 300-block file) makes the whole module
run in a few seconds.  These tests verify mechanics — row shapes, check
evaluation, selector behaviour — not the paper's full-scale claims (the
benchmarks assert those at the paper's sizing).
"""

import pytest

from repro.experiments import (
    fig3_read_time,
    fig4_hit_ratio,
    fig5_ready_unready,
    fig6_hitwait_vs_readtime,
    fig7_disk_response,
    fig8_total_time,
    fig9_sync_time,
    fig10_reductions,
    fig11_hitratio_vs_reduction,
    run_suite,
)
from repro.experiments.figures import FigureData
from repro.workload import WorkloadSpec, balanced_compute_mean


@pytest.fixture(scope="module")
def mini_suite():
    specs = [
        WorkloadSpec(p, "per-proc", balanced_compute_mean(p))
        for p in ("lfp", "lrp", "lw", "gfp", "grp", "gw")
    ]
    return run_suite(
        seed=2,
        specs=specs,
        n_nodes=6,
        n_disks=6,
        file_blocks=300,
        total_reads=300,
    )


def test_figure_data_helpers():
    fig = FigureData(
        figure_id="x", title="t", columns=["a"], rows=[(1,)],
        checks={"ok": True, "bad": False},
    )
    assert not fig.all_checks_pass
    assert fig.failed_checks() == ["bad"]
    assert FigureData("x", "t", ["a"], []).all_checks_pass


def test_fig3_rows_and_reduction(mini_suite):
    fig = fig3_read_time(mini_suite)
    assert len(fig.rows) == 6
    for label, base, pf, reduction in fig.rows:
        assert reduction == pytest.approx(100.0 * (base - pf) / base)


def test_fig4_ratios_in_range(mini_suite):
    fig = fig4_hit_ratio(mini_suite)
    for label, base, pf in fig.rows:
        assert 0.0 <= base <= 1.0
        assert 0.0 <= pf <= 1.0
        assert pf > base  # prefetching always improves the hit ratio here


def test_fig5_fraction_sanity(mini_suite):
    fig = fig5_ready_unready(mini_suite)
    assert fig.checks["fractions_valid"]


def test_fig6_has_notes(mini_suite):
    fig = fig6_hitwait_vs_readtime(mini_suite)
    assert "pearson" in fig.notes


def test_fig7_rows(mini_suite):
    fig = fig7_disk_response(mini_suite)
    assert fig.checks["never_below_physical_time"]


def test_fig8_reductions_consistent(mini_suite):
    fig = fig8_total_time(mini_suite)
    for label, base, pf, reduction in fig.rows:
        assert reduction == pytest.approx(100.0 * (base - pf) / base)


def test_fig9_only_sync_cells(mini_suite):
    fig = fig9_sync_time(mini_suite)
    assert len(fig.rows) == 6  # all mini cells use per-proc sync


def test_fig9_excludes_none_style():
    suite = run_suite(
        seed=2,
        specs=[WorkloadSpec("gw", "none", 0.0)],
        n_nodes=4, n_disks=4, file_blocks=100, total_reads=100,
    )
    fig = fig9_sync_time(suite)
    assert fig.rows == []


def test_fig10_fig11_row_count(mini_suite):
    assert len(fig10_reductions(mini_suite).rows) == 6
    assert len(fig11_hitratio_vs_reduction(mini_suite).rows) == 6


def test_suite_config_overrides_applied(mini_suite):
    cfg = mini_suite.pairs[0].prefetch.config
    assert cfg.n_nodes == 6
    assert cfg.file_blocks == 300


def test_figure_data_paired_points():
    fig = FigureData(
        figure_id="fig3", title="t",
        columns=["exp", "base", "pf", "red"],
        rows=[("a", 10.0, 5.0, 50.0), ("b", 20.0, 8.0, 60.0)],
    )
    assert fig.paired_points() == [(10.0, 5.0), (20.0, 8.0)]
    unpaired = FigureData("fig12", "t", ["a"], [(1.0,)])
    assert unpaired.paired_points() is None


def test_figure_data_to_markdown():
    fig = FigureData(
        figure_id="figX", title="Title",
        columns=["name", "value"],
        rows=[("a", 1.5), ("b", True)],
        checks={"ok": True, "bad": False},
        notes="a note",
    )
    md = fig.to_markdown()
    assert "### figX: Title" in md
    assert "| name | value |" in md
    assert "| a | 1.50 |" in md
    assert "| b | yes |" in md
    assert "*a note*" in md
    assert "- check `ok`: PASS" in md
    assert "- check `bad`: FAIL" in md
