"""Tests for the Fig. 2 taxonomy classifier."""

import pytest

from repro.experiments import ExperimentConfig, run_experiment
from repro.experiments.analysis import classify_pattern
from repro.fs import Trace, TraceRecord


def make_trace(accesses):
    return Trace(
        TraceRecord(time=float(t), node=n, block=b, outcome="miss",
                    latency=1.0)
        for t, n, b in accesses
    )


def test_empty_trace_rejected():
    with pytest.raises(ValueError):
        classify_pattern(make_trace([]))


def trace_of(pattern, seed=4, **overrides):
    """Record a real (no-prefetch, fast) run of a pattern."""
    config = ExperimentConfig(
        pattern=pattern,
        sync_style="none",
        compute_mean=0.0,
        prefetch=False,
        record_trace=True,
        n_nodes=8,
        n_disks=8,
        file_blocks=800,
        total_reads=800,
        seed=seed,
        **overrides,
    )
    return run_experiment(config).trace


@pytest.mark.parametrize("pattern", ["lfp", "lrp", "lw", "gfp", "grp", "gw"])
def test_classifier_recovers_each_pattern(pattern):
    trace = trace_of(pattern)
    result = classify_pattern(trace)
    assert result.name == pattern, (
        f"{pattern} classified as {result.name} "
        f"(local_seq={result.local_sequentiality:.2f}, "
        f"global_seq={result.global_sequentiality:.2f}, "
        f"overlap={result.overlap_fraction:.2f}, "
        f"cv={result.portion_length_cv:.2f})"
    )


def test_classifier_random_trace():
    blocks = [(i * 379 + 57) % 10_000 for i in range(200)]
    trace = make_trace([(i, i % 4, b) for i, b in enumerate(blocks)])
    result = classify_pattern(trace)
    assert result.name == "random"
    assert result.scope == "random"


def test_classifier_scope_measurements():
    trace = trace_of("gw")
    result = classify_pattern(trace)
    assert result.scope == "global"
    assert result.global_sequentiality > 0.9
    assert result.local_sequentiality < 0.75
    assert not result.overlapped


def test_classifier_lw_is_overlapped():
    trace = trace_of("lw")
    result = classify_pattern(trace)
    assert result.overlapped
    assert result.overlap_fraction == 1.0
    assert result.scope == "local"


def test_classifier_portion_regularity():
    fixed = classify_pattern(trace_of("lfp"))
    random_p = classify_pattern(trace_of("lrp"))
    assert fixed.regular_portions
    assert not random_p.regular_portions
    assert fixed.portion_length_cv < random_p.portion_length_cv
