"""Tests for the generic parameter-sweep utility."""

import pytest

from repro.experiments import ExperimentConfig, run_sweep, sweepable_fields

SMALL = ExperimentConfig(
    pattern="gw", sync_style="per-proc", per_proc_k=5,
    n_nodes=4, n_disks=4, file_blocks=120, total_reads=120,
    compute_mean=10.0,
)


def test_sweepable_fields_cover_config():
    names = sweepable_fields()
    for expected in ("lead", "policy", "compute_mean", "n_nodes",
                     "prefetch_buffers_per_node"):
        assert expected in names
    assert "costs" not in names


def test_unknown_param_rejected():
    with pytest.raises(ValueError, match="cannot sweep"):
        run_sweep("warp_factor", [1], base=SMALL)


def test_empty_values_rejected():
    with pytest.raises(ValueError, match="non-empty"):
        run_sweep("lead", [], base=SMALL)


def test_lead_sweep_shares_baseline():
    sweep = run_sweep("lead", [0, 5], base=SMALL)
    assert len(sweep.points) == 2
    # Prefetch-only parameter: the baseline object is shared.
    assert sweep.points[0].baseline is sweep.points[1].baseline
    assert sweep.points[0].prefetch.config.lead == 0
    assert sweep.points[1].prefetch.config.lead == 5


def test_machine_param_reruns_baseline():
    sweep = run_sweep("compute_mean", [0.0, 10.0], base=SMALL)
    assert sweep.points[0].baseline is not sweep.points[1].baseline
    assert (
        sweep.points[1].baseline.total_time
        > sweep.points[0].baseline.total_time
    )


def test_rows_and_series():
    sweep = run_sweep("lead", [0, 5], base=SMALL)
    rows = sweep.rows()
    assert len(rows) == 2
    assert rows[0][0] == 0
    assert len(rows[0]) == len(sweep.COLUMNS)
    totals = sweep.series(lambda p: p.prefetch.total_time)
    assert all(t > 0 for t in totals)


def test_reduction_properties():
    sweep = run_sweep("lead", [0], base=SMALL)
    point = sweep.points[0]
    expected = (
        100.0
        * (point.baseline.total_time - point.prefetch.total_time)
        / point.baseline.total_time
    )
    assert point.total_time_reduction == pytest.approx(expected)


def test_policy_sweep():
    sweep = run_sweep(
        "policy", ["oracle", "obl"], base=SMALL, share_baseline=True
    )
    oracle, obl = sweep.points
    assert oracle.prefetch.hit_ratio >= obl.prefetch.hit_ratio
