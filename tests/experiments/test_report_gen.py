"""Tests for the report generator (formatting; the full-scale content run
is the benchmark suite's job)."""

from repro.experiments import report_gen
from repro.experiments.figures import FigureData


def fake_figures():
    return [
        FigureData(
            figure_id="fig3", title="Read time", columns=["a", "b"],
            rows=[(1.0, 2.0)], checks={"ok": True},
        ),
        FigureData(
            figure_id="fig8", title="Total time", columns=["a"],
            rows=[(3.0,)], checks={"good": True, "bad": False},
            notes="a note",
        ),
    ]


def test_generate_report_writes_markdown(tmp_path, monkeypatch):
    monkeypatch.setattr(
        report_gen, "collect_all_figures", lambda seed, progress=None: fake_figures()
    )
    out = tmp_path / "r.md"
    figures = report_gen.generate_report(out, seed=5)
    text = out.read_text()
    assert "# RAPID Transit reproduction report" in text
    assert "Seed 5" in text
    assert "2/3 paper-shape checks pass" in text
    assert "## FAILED checks" in text
    assert "- fig8: `bad`" in text
    assert "### fig3: Read time" in text
    assert "*a note*" in text
    assert len(figures) == 2


def test_generate_report_no_failures_section_when_clean(tmp_path, monkeypatch):
    clean = [fake_figures()[0]]
    monkeypatch.setattr(
        report_gen, "collect_all_figures", lambda seed, progress=None: clean
    )
    out = tmp_path / "r.md"
    report_gen.generate_report(out)
    text = out.read_text()
    assert "FAILED" not in text
    assert "1/1 paper-shape checks pass" in text


def test_progress_callback_plumbed(monkeypatch, tmp_path):
    messages = []

    def fake_collect(seed, progress=None):
        if progress:
            progress("step one")
        return [fake_figures()[0]]

    monkeypatch.setattr(report_gen, "collect_all_figures", fake_collect)
    report_gen.generate_report(tmp_path / "r.md", progress=messages.append)
    assert messages == ["step one"]
