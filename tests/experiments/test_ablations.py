"""Tests for the ablation experiments (small-scale smoke checks; the
full-scale versions run as benchmarks)."""

from repro.experiments import ExperimentConfig, run_experiment


def test_layout_config_builds_each_layout():
    for layout in ("round-robin", "striped", "hashed"):
        r = run_experiment(
            ExperimentConfig(
                pattern="gw", n_nodes=4, n_disks=4, file_blocks=100,
                total_reads=100, layout=layout, compute_mean=0.0,
            )
        )
        assert r.total_accesses == 100, layout


def test_layout_validation():
    import pytest

    with pytest.raises(ValueError):
        ExperimentConfig(layout="diagonal")
    with pytest.raises(ValueError):
        ExperimentConfig(stripe_width=0)


def test_striping_hurts_cooperating_sequential_reads():
    """Consecutive blocks behind one disk serialize the gw readers."""
    common = dict(
        pattern="gw", n_nodes=4, n_disks=4, file_blocks=200,
        total_reads=200, compute_mean=0.0, prefetch=False, seed=3,
    )
    rr = run_experiment(ExperimentConfig(layout="round-robin", **common))
    striped = run_experiment(
        ExperimentConfig(layout="striped", stripe_width=8, **common)
    )
    assert striped.disk_response_mean > rr.disk_response_mean


def test_naive_structures_slow_prefetch_actions():
    common = dict(
        pattern="gw", n_nodes=4, n_disks=4, file_blocks=200,
        total_reads=200, seed=3,
    )
    fast = run_experiment(
        ExperimentConfig(replicated_structures=True, **common)
    )
    slow = run_experiment(
        ExperimentConfig(replicated_structures=False, **common)
    )
    assert slow.prefetch_action_mean > 1.5 * fast.prefetch_action_mean
