"""Integration tests for the experiment runner.

Small configurations (4 nodes, short strings) so the whole file runs in a
few seconds while still exercising every subsystem together.
"""

import pytest

from repro.experiments import ExperimentConfig, run_experiment, run_pair

SMALL = dict(n_nodes=4, n_disks=4, file_blocks=200, total_reads=200)


def small_config(**kwargs):
    merged = {**SMALL, **kwargs}
    return ExperimentConfig(**merged)


def test_run_completes_and_accounts_all_reads():
    r = run_experiment(small_config(pattern="gw", sync_style="per-proc"))
    assert r.total_accesses == 200
    assert r.total_time > 0
    assert r.blocks_demand_fetched + r.blocks_prefetched >= 200 * r.miss_ratio


def test_baseline_never_prefetches():
    r = run_experiment(small_config(prefetch=False))
    assert r.blocks_prefetched == 0
    assert r.prefetch_outcomes == {}
    assert r.hit_ratio == 0.0  # gw: no reuse, no prefetch => all misses


def test_prefetch_improves_gw():
    pf, base = run_pair(small_config(pattern="gw", sync_style="per-proc"))
    assert pf.hit_ratio > 0.5
    assert pf.avg_read_time < base.avg_read_time
    assert pf.blocks_prefetched > 0


def test_deterministic_given_seed():
    cfg = small_config(pattern="grp", sync_style="total", seed=5)
    a = run_experiment(cfg)
    b = run_experiment(cfg)
    assert a.total_time == b.total_time
    assert a.hit_ratio == b.hit_ratio
    assert a.metrics.read_times.samples == b.metrics.read_times.samples


def test_different_seeds_differ():
    a = run_experiment(small_config(seed=1, compute_mean=20.0))
    b = run_experiment(small_config(seed=2, compute_mean=20.0))
    assert a.total_time != b.total_time


def test_every_pattern_runs_to_completion():
    for pattern in ("lfp", "lrp", "lw", "gfp", "grp", "gw"):
        r = run_experiment(small_config(pattern=pattern))
        assert r.total_accesses == 200, pattern


def test_every_sync_style_runs_to_completion():
    for sync in ("none", "per-proc", "total", "portion"):
        r = run_experiment(
            small_config(pattern="gfp", sync_style=sync, total_k=50)
        )
        assert r.total_accesses == 200, sync


def test_sync_waits_recorded():
    r = run_experiment(
        small_config(pattern="gw", sync_style="per-proc", per_proc_k=10)
    )
    assert r.sync_wait_count > 0
    assert r.sync_wait_mean >= 0.0


def test_predictor_policies_run():
    for policy in ("obl", "portion", "global-seq"):
        r = run_experiment(small_config(pattern="gw", policy=policy))
        assert r.total_accesses == 200, policy


def test_global_seq_predictor_prefetches_gw():
    r = run_experiment(small_config(pattern="gw", policy="global-seq"))
    assert r.blocks_prefetched > 0
    assert r.hit_ratio > 0.2


def test_lead_config_respected():
    r = run_experiment(small_config(pattern="gw", lead=20))
    # With a lead the first `lead` blocks cannot be prefetched.
    assert r.miss_ratio > 0.05


def test_trace_recorded_when_requested():
    r = run_experiment(small_config(record_trace=True))
    assert r.trace is not None
    assert len(r.trace) == 200
    r2 = run_experiment(small_config(record_trace=False))
    assert r2.trace is None


def test_idle_accounting_present():
    r = run_experiment(small_config(pattern="gw", sync_style="per-proc"))
    assert set(r.idle_by_kind) == {"sync", "self_io", "remote_io"}
    sync_mean, sync_actual, sync_count = r.idle_by_kind["sync"]
    assert sync_count > 0
    assert sync_actual >= sync_mean


def test_run_pair_accepts_baseline_config():
    cfg = small_config(prefetch=False)
    pf, base = run_pair(cfg)
    assert pf.config.prefetch
    assert not base.config.prefetch


def test_naive_memory_layout_slows_things_down():
    fast = run_experiment(small_config(seed=3))
    slow = run_experiment(
        small_config(seed=3, replicated_structures=False)
    )
    assert slow.avg_read_time > fast.avg_read_time


def test_seek_disk_model_runs():
    r = run_experiment(small_config(disk_model="seek"))
    assert r.total_accesses == 200
