"""The writeback-under-fail-slow chaos scenario and rw tournament cells."""

import pytest

from repro.experiments import (
    ExperimentConfig,
    TournamentSpec,
    chaos_writeback_fail_slow,
    run_tournament,
)


@pytest.fixture(scope="module")
def figure():
    return chaos_writeback_fail_slow(cache=None)


def test_all_checks_pass(figure):
    assert figure.checks, "scenario produced no checks"
    failed = [name for name, ok in figure.checks.items() if not ok]
    assert not failed, f"failed checks: {failed}"


def test_scenario_rows_cover_healthy_and_faulted(figure):
    scenarios = [row[0] for row in figure.rows]
    assert scenarios == ["healthy", "fail-slow"]
    columns = dict(zip(figure.columns, zip(*figure.rows)))
    # Same workload either way: identical write counts.
    assert columns["writes"][0] == columns["writes"][1] > 0
    # The fault slows the run down and provokes retries.
    assert columns["total (ms)"][1] > columns["total (ms)"][0]
    assert columns["retries"][1] > columns["retries"][0] == 0


def test_no_write_is_lost_under_fail_slow(figure):
    columns = dict(zip(figure.columns, zip(*figure.rows)))
    assert columns["flush failures"] == (0, 0)


def test_tournament_accepts_rw_cells():
    spec = TournamentSpec(
        patterns=("lfp-rw",),
        policies=("none", "oracle"),
        base=ExperimentConfig(
            n_nodes=4,
            n_disks=4,
            file_blocks=160,
            total_reads=160,
            record_trace=False,
        ),
    )
    league = run_tournament(spec, cache=None)
    assert len(league.cells) == 2  # one per entrant
    assert {cell.pattern for cell in league.cells} == {"lfp-rw"}
    for cell in league.cells:
        assert cell.result.total_writes > 0
    assert any(cell.winner for cell in league.cells)


def test_tournament_still_rejects_unknown_patterns():
    with pytest.raises(ValueError, match="unknown pattern"):
        TournamentSpec(patterns=("lfp-rw", "zigzag"))
