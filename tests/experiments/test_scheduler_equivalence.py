"""Backend equivalence at the experiment level: the tentpole proof.

The calendar queue is only admissible because it serves the *exact*
``(time, priority, sequence)`` order of the reference heap — which
makes the backend choice result-neutral for every figure in the
repository.  These tests prove it the same way the audit layer proves
seed stability: identical event-trace digests across all six paper
patterns (downscaled), under fault injection, and with the
observability recorder attached.
"""

import pytest

from repro.analysis.audit import run_with_audit
from repro.experiments import ExperimentConfig
from repro.faults import FailSlow, FaultPlan, ResiliencePolicy, TransientErrors
from repro.workload.patterns import PATTERN_NAMES

#: Small enough for CI, big enough to exercise queue growth, daemon
#: scheduling, and barrier bursts.
SMALL = {"n_nodes": 4, "n_disks": 4, "file_blocks": 200, "total_reads": 200}


def _digests(config):
    out = {}
    for scheduler in ("heap", "calendar"):
        report = run_with_audit(
            config.with_overrides(scheduler=scheduler), sweep_interval=None
        )
        out[scheduler] = (report.trace_digest, report.n_events)
    return out


@pytest.mark.parametrize("pattern", PATTERN_NAMES)
def test_backends_identical_on_paper_patterns(pattern):
    digests = _digests(ExperimentConfig(pattern=pattern, **SMALL))
    assert digests["heap"] == digests["calendar"]


def test_backends_identical_under_faults():
    plan = FaultPlan(
        faults=(
            FailSlow(disk=1, factor=5.0, start=100.0, end=900.0),
            TransientErrors(disk=2, probability=0.3, start=100.0, end=800.0),
        ),
        resilience=ResiliencePolicy(
            timeout=240.0, max_retries=40, backoff_base=10.0, backoff_max=120.0
        ),
    )
    digests = _digests(ExperimentConfig(pattern="gw", faults=plan, **SMALL))
    assert digests["heap"] == digests["calendar"]


def test_backends_identical_with_obs_attached():
    config = ExperimentConfig(pattern="grp", sync_style="per-proc", **SMALL)
    out = {}
    for scheduler in ("heap", "calendar"):
        report = run_with_audit(
            config.with_overrides(scheduler=scheduler),
            sweep_interval=None,
            obs=True,
        )
        out[scheduler] = (report.trace_digest, report.n_events)
    assert out["heap"] == out["calendar"]


def test_batched_timeouts_deterministic_and_result_neutral():
    """Batching changes the event population, not the physics.

    Two batched runs must be schedule-identical to each other, pop
    fewer events than the unbatched run, and agree on the simulated
    outcome (total time) — the coalesced waiters still wake at the
    same instants.
    """
    config = ExperimentConfig(pattern="gw", batch_timeouts=True, **SMALL)
    first = run_with_audit(config, sweep_interval=None)
    second = run_with_audit(config, sweep_interval=None)
    assert first.trace_digest == second.trace_digest

    plain = run_with_audit(
        config.with_overrides(batch_timeouts=False), sweep_interval=None
    )
    assert first.n_events < plain.n_events
    assert first.result.total_time == plain.result.total_time
    assert first.result.avg_read_time == plain.result.avg_read_time


def test_config_rejects_unknown_scheduler():
    with pytest.raises(ValueError, match="unknown scheduler"):
        ExperimentConfig(scheduler="fifo")
