"""Tests for the seeded chaos-soak driver."""

import pytest

from repro.experiments import (
    ExperimentConfig,
    SoakSpec,
    run_soak,
)
from repro.experiments.soak import SOAK_INVARIANTS, generate_plan
from repro.sim.rng import RandomStreams

SMALL = ExperimentConfig(
    n_nodes=4, n_disks=4, file_blocks=200, total_reads=200,
    record_trace=False,
)


def small_spec(**kwargs):
    kwargs.setdefault("n_plans", 2)
    kwargs.setdefault("base", SMALL)
    return SoakSpec(**kwargs)


# ------------------------------------------------------------------- spec


def test_spec_validation():
    with pytest.raises(ValueError):
        SoakSpec(n_plans=0)
    with pytest.raises(ValueError):
        SoakSpec(pattern="nope")
    with pytest.raises(ValueError):
        SoakSpec(sync_style="nope")
    with pytest.raises(ValueError):
        SoakSpec(pattern="lw", sync_style="portion")
    with pytest.raises(ValueError):
        SoakSpec(policy="nope")


def test_config_for_none_disables_prefetch():
    spec = small_spec(policy="none")
    assert not spec.prefetching
    plan = spec.plans()[0]
    config = spec.config_for(plan)
    assert not config.prefetch and config.faults is plan


# ------------------------------------------------------------- plan draws


def test_plans_are_seed_deterministic():
    first = small_spec(n_plans=4).plans()
    again = small_spec(n_plans=4).plans()
    assert [p.digest for p in first] == [p.digest for p in again]
    other = small_spec(n_plans=4, seed=2).plans()
    assert [p.digest for p in first] != [p.digest for p in other]


def test_generated_plans_are_blessed():
    """Every drawn plan obeys the blessing: 2-3 faults, the first two of
    distinct kinds, windows inside the mid-run band, valid for the
    machine."""
    streams = RandomStreams(99)
    for index in range(20):
        plan = generate_plan(streams, index, n_disks=8)
        assert plan.name == f"soak-{index}"
        assert 2 <= len(plan.faults) <= 3
        kinds = [spec.kind for spec in plan.faults]
        assert kinds[0] != kinds[1]
        plan.validate_for(8)
        for spec in plan.faults:
            start, end = spec.window()
            assert 100.0 <= start <= 600.0
            assert 200.0 <= end - start <= 500.0


def test_plan_indices_draw_from_distinct_streams():
    streams = RandomStreams(1)
    a = generate_plan(streams, 0, n_disks=8)
    b = generate_plan(streams, 1, n_disks=8)
    assert a.digest != b.digest


# ------------------------------------------------------------------ soak


@pytest.fixture(scope="module")
def small_soak():
    return run_soak(small_spec())


def test_soak_passes_every_invariant(small_soak):
    assert small_soak.passed
    assert small_soak.failures() == []
    for cell in small_soak.cells:
        assert set(cell.invariants) == set(SOAK_INVARIANTS)
        assert cell.error == ""
        assert cell.trace_digest and cell.fault_digest
        assert cell.measures["total_time"] > 0.0


def test_soak_exercises_the_fault_machinery(small_soak):
    # Across the blessed set at least one plan produced degraded time
    # (fail-slow/hot-spot windows always do).
    assert any(
        cell.measures["time_degraded"] > 0.0 for cell in small_soak.cells
    )


def test_soak_digest_is_stable_across_reruns(small_soak):
    assert run_soak(small_spec()).digest() == small_soak.digest()


def test_soak_digest_distinguishes_seeds(small_soak):
    assert run_soak(small_spec(seed=3)).digest() != small_soak.digest()


def test_soak_render_and_csv(small_soak):
    table = small_soak.render()
    assert "chaos soak" in table
    assert "ok" in table
    csv = small_soak.to_csv()
    lines = csv.strip().splitlines()
    assert len(lines) == 1 + len(small_soak.cells)
    assert lines[0].startswith("plan,plan_digest,faults,")
    for name in SOAK_INVARIANTS:
        assert name in lines[0]


def test_soak_without_prefetch_skips_breaker_invariant():
    """The no-prefetch baseline never issues the half-open probe that
    closes a breaker, so breaker_closes is vacuously true — the other
    invariants still hold."""
    report = run_soak(small_spec(n_plans=1, policy="none"))
    assert report.passed


def test_progress_callback():
    messages = []
    run_soak(small_spec(n_plans=1), progress=messages.append)
    assert messages and "soak plan 1/1" in messages[0]
