"""Tests for ExperimentConfig."""

import pytest

from repro.experiments import ExperimentConfig


def test_defaults_match_paper():
    cfg = ExperimentConfig()
    assert cfg.n_nodes == 20
    assert cfg.n_disks == 20
    assert cfg.file_blocks == 2000
    assert cfg.effective_total_reads == 2000
    assert cfg.demand_buffers_per_node == 1
    assert cfg.prefetch_buffers_per_node == 3
    assert cfg.per_proc_k == 10
    assert cfg.total_k == 200
    assert cfg.costs.disk_access_time == 30.0


def test_validation():
    with pytest.raises(ValueError):
        ExperimentConfig(pattern="nope")
    with pytest.raises(ValueError):
        ExperimentConfig(sync_style="nope")
    with pytest.raises(ValueError):
        ExperimentConfig(policy="psychic")
    with pytest.raises(ValueError):
        ExperimentConfig(compute_mean=-1.0)
    with pytest.raises(ValueError):
        ExperimentConfig(lead=-1)
    with pytest.raises(ValueError):
        ExperimentConfig(min_prefetch_time=-0.5)


def test_lw_portion_combination_rejected():
    with pytest.raises(ValueError, match="footnote 3"):
        ExperimentConfig(pattern="lw", sync_style="portion")


def test_intensity():
    assert ExperimentConfig(compute_mean=0.0).intensity == "io-bound"
    assert ExperimentConfig(compute_mean=30.0).intensity == "balanced"


def test_label_includes_key_fields():
    cfg = ExperimentConfig(pattern="lfp", sync_style="total", lead=20)
    assert "lfp" in cfg.label
    assert "total" in cfg.label
    assert "lead=20" in cfg.label
    base = cfg.paired_baseline()
    assert "no-prefetch" in base.label


def test_paired_baseline_shares_seed():
    cfg = ExperimentConfig(seed=42)
    base = cfg.paired_baseline()
    assert base.seed == 42
    assert not base.prefetch
    assert cfg.prefetch


def test_with_overrides():
    cfg = ExperimentConfig()
    other = cfg.with_overrides(lead=10, seed=9)
    assert other.lead == 10
    assert other.seed == 9
    assert cfg.lead == 0


def test_configs_hashable_and_comparable():
    a = ExperimentConfig(seed=1)
    b = ExperimentConfig(seed=1)
    assert a == b
    assert hash(a) == hash(b)
