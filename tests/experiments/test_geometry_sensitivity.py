"""Portion-geometry sensitivity (backs DESIGN.md §5).

The paper never states its portion lengths/strides.  These tests verify
the claim that the reproduced *shapes* do not hinge on our choices:
prefetching wins on the fixed-portion patterns across a spread of
geometries, including deliberately awkward ones.
"""

import pytest

from repro.experiments import ExperimentConfig, run_pair

SCALE = dict(n_nodes=8, n_disks=8, file_blocks=800, total_reads=800)

GEOMETRIES = [
    (5, 11),    # short portions, small prime stride
    (10, 21),   # the defaults
    (10, 17),   # default length, different coprime stride
    (20, 33),   # long portions
    (10, 24),   # stride sharing a factor with the disk count (8)
]


@pytest.mark.parametrize("length,stride", GEOMETRIES)
def test_lfp_prefetch_wins_across_geometries(length, stride):
    pf, base = run_pair(
        ExperimentConfig(
            pattern="lfp", sync_style="per-proc", seed=7,
            portion_length=length, portion_stride=stride, **SCALE
        )
    )
    assert pf.avg_read_time < base.avg_read_time
    assert pf.hit_ratio > 0.5


@pytest.mark.parametrize("length,stride", GEOMETRIES)
def test_gfp_prefetch_wins_across_geometries(length, stride):
    pf, base = run_pair(
        ExperimentConfig(
            pattern="gfp", sync_style="per-proc", seed=7,
            portion_length=length, portion_stride=stride, **SCALE
        )
    )
    assert pf.avg_read_time < base.avg_read_time
    assert pf.total_time < base.total_time
    assert pf.hit_ratio > 0.5


def test_geometry_config_validation():
    with pytest.raises(ValueError):
        ExperimentConfig(portion_length=0)
    with pytest.raises(ValueError):
        ExperimentConfig(portion_stride=-1)


def test_disk_aligned_stride_is_the_known_pathology():
    """A stride that is a multiple of the disk count concentrates every
    portion on the same disk subset.  Demand traffic is spread out in time
    and barely notices, but prefetch *bursts* hammer the concentrated
    disks: prefetch-side disk response blows up vs a coprime stride.
    (This is why the default stride is coprime with the disk count.)"""
    aligned_pf, _ = run_pair(
        ExperimentConfig(
            pattern="gfp", sync_style="per-proc", seed=7,
            portion_length=4, portion_stride=8, **SCALE
        )
    )
    coprime_pf, _ = run_pair(
        ExperimentConfig(
            pattern="gfp", sync_style="per-proc", seed=7,
            portion_length=4, portion_stride=9, **SCALE
        )
    )
    assert (
        aligned_pf.disk_response_mean > 1.5 * coprime_pf.disk_response_mean
    )
