"""Tests for the paired-suite driver (on a reduced spec list)."""

from repro.experiments import config_for_spec, run_suite
from repro.workload import WorkloadSpec


SMALL_SPECS = [
    WorkloadSpec("gw", "none", 0.0),
    WorkloadSpec("lw", "per-proc", 10.0),
]


def small_suite(seed=1):
    return run_suite(
        seed=seed,
        specs=[
            # Shrink the runs via config overrides by monkey... instead,
            # use the standard sizing but only two cells: still fast.
            *SMALL_SPECS,
        ],
    )


def test_config_for_spec_maps_fields():
    spec = WorkloadSpec("lfp", "total", 30.0)
    cfg = config_for_spec(spec, seed=7)
    assert cfg.pattern == "lfp"
    assert cfg.sync_style == "total"
    assert cfg.compute_mean == 30.0
    assert cfg.seed == 7
    assert cfg.prefetch


def test_run_suite_produces_pairs():
    suite = small_suite()
    assert len(suite.pairs) == 2
    for pair in suite.pairs:
        assert pair.prefetch.config.prefetch
        assert not pair.baseline.config.prefetch
        assert pair.prefetch.config.seed == pair.baseline.config.seed


def test_pair_reductions():
    suite = small_suite()
    for pair in suite.pairs:
        expected = 100.0 * (
            pair.baseline.total_time - pair.prefetch.total_time
        ) / pair.baseline.total_time
        assert abs(pair.total_time_reduction - expected) < 1e-9


def test_suite_selectors():
    suite = small_suite()
    assert len(suite.by_pattern("gw")) == 1
    assert len(suite.by_pattern("lfp")) == 0
    assert len(suite.io_bound()) == 1
    assert len(suite.balanced()) == 1
    assert len(suite.with_sync()) == 1


def test_progress_callback_called():
    messages = []
    run_suite(seed=1, specs=[SMALL_SPECS[0]], progress=messages.append)
    assert len(messages) == 1
    assert "gw" in messages[0]
