"""Tests for offline trace analysis."""

import pytest

from repro.experiments.analysis import (
    lru_hit_ratio,
    opt_hit_ratio,
    reuse_distances,
    run_lengths,
    sequentiality,
)
from repro.fs import Trace, TraceRecord


def make_trace(accesses):
    """accesses: list of (time, node, block)."""
    return Trace(
        TraceRecord(time=float(t), node=n, block=b, outcome="miss",
                    latency=1.0)
        for t, n, b in accesses
    )


def sequential_trace(n=20, node=0):
    return make_trace([(i, node, i) for i in range(n)])


def test_lru_validation():
    with pytest.raises(ValueError):
        lru_hit_ratio(sequential_trace(), 0)
    with pytest.raises(ValueError):
        opt_hit_ratio(sequential_trace(), 0)


def test_lru_sequential_no_reuse():
    """Disjoint sequential access gets nothing from caching alone — the
    paper's motivation for prefetching."""
    assert lru_hit_ratio(sequential_trace(), 10) == 0.0
    assert opt_hit_ratio(sequential_trace(), 10) == 0.0


def test_lru_repeated_block():
    trace = make_trace([(i, 0, 0) for i in range(10)])
    assert lru_hit_ratio(trace, 1) == 0.9


def test_lru_capacity_effect():
    # Cyclic access to 3 blocks with capacity 2: LRU always misses.
    trace = make_trace([(i, 0, i % 3) for i in range(30)])
    assert lru_hit_ratio(trace, 2) == 0.0
    assert lru_hit_ratio(trace, 3) == pytest.approx(27 / 30)


def test_opt_beats_lru():
    trace = make_trace([(i, 0, i % 3) for i in range(30)])
    assert opt_hit_ratio(trace, 2) > lru_hit_ratio(trace, 2)


def test_opt_known_value():
    # OPT with bypass on cyclic 3-block access with capacity 2: keep
    # blocks 0 and 1 resident forever and bypass every access to block 2.
    # 30 refs = 2 cold misses + 10 bypassed misses -> 18 hits.
    trace = make_trace([(i, 0, i % 3) for i in range(30)])
    assert opt_hit_ratio(trace, 2) == pytest.approx(18 / 30)


def test_empty_trace():
    trace = make_trace([])
    assert lru_hit_ratio(trace, 5) == 0.0
    assert opt_hit_ratio(trace, 5) == 0.0
    assert reuse_distances(trace) == []


def test_sequentiality_perfect():
    seq = sequentiality(sequential_trace())
    assert seq["successor_fraction"] == 1.0
    assert seq["monotone_fraction"] == 1.0


def test_sequentiality_random():
    # Scattered, non-repeating blocks: nothing is a successor of anything
    # in the recent window.
    blocks = [(i * 379 + 57) % 10_000 for i in range(64)]
    trace = make_trace([(i, 0, b) for i, b in enumerate(blocks)])
    seq = sequentiality(trace)
    assert seq["successor_fraction"] < 0.2


def test_sequentiality_interleaved_global():
    """Round-robin reads by 4 nodes are globally sequential."""
    trace = make_trace([(i, i % 4, i) for i in range(40)])
    seq = sequentiality(trace)
    assert seq["successor_fraction"] == 1.0


def test_run_lengths_per_node():
    trace = make_trace(
        [(0, 0, 10), (1, 0, 11), (2, 0, 12), (3, 0, 50), (4, 0, 51),
         (5, 1, 7)]
    )
    runs = run_lengths(trace)
    assert runs[0] == [3, 2]
    assert runs[1] == [1]


def test_reuse_distances():
    trace = make_trace([(0, 0, 1), (1, 0, 2), (2, 0, 1), (3, 0, 1)])
    assert reuse_distances(trace) == [-1, -1, 1, 0]


def test_analysis_on_simulated_run():
    """End-to-end: run lw (strong reuse) and confirm the offline tools see
    the locality."""
    from repro.experiments import ExperimentConfig, run_experiment

    r = run_experiment(
        ExperimentConfig(
            pattern="lw", n_nodes=4, n_disks=4, file_blocks=100,
            total_reads=80, compute_mean=0.0, record_trace=True,
            prefetch=False,
        )
    )
    trace = r.trace
    assert trace is not None
    # Every block is read by all 4 nodes: reuse exists.
    assert lru_hit_ratio(trace, 80) > 0.5
    runs = run_lengths(trace)
    assert all(max(rs) >= 5 for rs in runs.values())
