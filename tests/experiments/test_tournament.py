"""Tests for the policy tournament driver."""

import pytest

from repro.experiments import (
    ExperimentConfig,
    TournamentSpec,
    run_tournament,
)
from repro.experiments.tournament import CSV_COLUMNS, NO_PREFETCH

SMALL = ExperimentConfig(n_nodes=4, n_disks=4, file_blocks=200, total_reads=200)


def small_spec(**kwargs):
    kwargs.setdefault("patterns", ("lw",))
    kwargs.setdefault("policies", (NO_PREFETCH, "oracle", "adaptive"))
    kwargs.setdefault("base", SMALL)
    return TournamentSpec(**kwargs)


# ------------------------------------------------------------------- spec


def test_spec_validation():
    with pytest.raises(ValueError):
        TournamentSpec(patterns=())
    with pytest.raises(ValueError):
        TournamentSpec(sync_styles=())
    with pytest.raises(ValueError):
        TournamentSpec(policies=("oracle",))
    with pytest.raises(ValueError):
        TournamentSpec(patterns=("nope",))
    with pytest.raises(ValueError):
        TournamentSpec(sync_styles=("nope",))
    with pytest.raises(ValueError):
        TournamentSpec(policies=("none", "nope"))
    with pytest.raises(ValueError):
        TournamentSpec(policies=("none", "oracle", "oracle"))


def test_spec_skips_lw_portion_cell():
    spec = TournamentSpec(
        patterns=("lw", "gw"), sync_styles=("none", "portion")
    )
    cells = list(spec.cells())
    assert ("lw", "portion", None) not in cells
    assert ("lw", "none", None) in cells
    assert ("gw", "portion", None) in cells


def test_spec_config_for_none_disables_prefetch():
    spec = small_spec()
    config = spec.config_for("lw", "none", NO_PREFETCH)
    assert not config.prefetch
    config = spec.config_for("lw", "none", "adaptive")
    assert config.prefetch and config.policy == "adaptive"
    # Base sizing carries over.
    assert config.n_nodes == 4 and config.file_blocks == 200


# ------------------------------------------------------------------ smoke


@pytest.fixture(scope="module")
def small_tournament():
    return run_tournament(small_spec())


def test_tournament_runs_every_entrant(small_tournament):
    assert len(small_tournament.cells) == 3
    assert [c.policy for c in small_tournament.cells] == [
        NO_PREFETCH,
        "oracle",
        "adaptive",
    ]


def test_tournament_marks_exactly_one_winner_per_cell(small_tournament):
    winners = [c for c in small_tournament.cells if c.winner]
    assert len(winners) == 1
    best = min(
        small_tournament.cells, key=lambda c: c.result.total_time
    )
    assert winners[0] is best


def test_prefetching_beats_no_prefetch_on_sequential(small_tournament):
    by_policy = {c.policy: c.result for c in small_tournament.cells}
    # On a purely sequential pattern both the oracle and the adaptive
    # policy must beat the no-prefetch baseline.
    assert by_policy["oracle"].total_time < by_policy["none"].total_time
    assert by_policy["adaptive"].total_time < by_policy["none"].total_time


def test_adaptive_reports_distance_trajectory(small_tournament):
    adaptive = next(
        c for c in small_tournament.cells if c.policy == "adaptive"
    )
    assert adaptive.result.adaptive_distance_summary
    assert adaptive.result.adaptive_distance_trajectory
    oracle = next(
        c for c in small_tournament.cells if c.policy == "oracle"
    )
    assert not oracle.result.adaptive_distance_summary


def test_standings_and_beats_baseline(small_tournament):
    standings = small_tournament.standings()
    assert sorted(p for p, _ in standings) == ["adaptive", "none", "oracle"]
    assert sum(w for _, w in standings) == 1  # one cell
    won, total = small_tournament.beats_baseline("adaptive")
    assert (won, total) == (1, 1)


def test_render_and_csv(small_tournament):
    table = small_tournament.render()
    assert "policy tournament" in table
    assert "adaptive" in table
    csv = small_tournament.to_csv()
    lines = csv.strip().splitlines()
    assert lines[0] == ",".join(CSV_COLUMNS)
    assert len(lines) == 1 + len(small_tournament.cells)


def test_digest_is_stable_across_reruns(small_tournament):
    again = run_tournament(small_spec())
    assert small_tournament.digest() == again.digest()


def test_digest_distinguishes_specs(small_tournament):
    other = run_tournament(
        small_spec(base=SMALL.with_overrides(seed=2))
    )
    assert small_tournament.digest() != other.digest()


def test_tournament_through_executor_cache(tmp_path, small_tournament):
    from repro.perf.cache import RunCache

    cache = RunCache(tmp_path / "runs")
    first = run_tournament(small_spec(), cache=cache)
    second = run_tournament(small_spec(), cache=cache)
    assert first.digest() == second.digest() == small_tournament.digest()


def test_progress_callback():
    messages = []
    run_tournament(
        small_spec(policies=(NO_PREFETCH, "adaptive")),
        progress=messages.append,
    )
    assert messages and "cells" in messages[0]


# ------------------------------------------------------- chaos (fault axis)

from repro.faults import (  # noqa: E402
    FailStop,
    FaultPlan,
    ResiliencePolicy,
    TransientErrors,
)

_RES = ResiliencePolicy(
    timeout=240.0, max_retries=40, backoff_base=10.0, backoff_max=120.0
)
OUTAGE = FaultPlan(
    faults=(FailStop(disk=0, at=200.0, recover=1600.0),),
    resilience=_RES,
    name="outage",
)
FLAKY = FaultPlan(
    faults=(
        TransientErrors(disk=2, probability=0.4, start=200.0, end=1200.0),
    ),
    resilience=_RES,
    name="flaky",
)


def chaos_spec(**kwargs):
    kwargs.setdefault("fault_plans", (None, OUTAGE))
    kwargs.setdefault("policies", (NO_PREFETCH, "adaptive"))
    return small_spec(**kwargs)


@pytest.fixture(scope="module")
def chaos_tournament():
    return run_tournament(chaos_spec())


def test_fault_axis_validation():
    with pytest.raises(ValueError):
        small_spec(fault_plans=())
    with pytest.raises(ValueError):
        small_spec(fault_plans=(None, None))
    with pytest.raises(ValueError):
        small_spec(fault_plans=(OUTAGE, OUTAGE))


def test_base_plan_is_lifted_into_fault_axis():
    spec = small_spec(base=SMALL.with_overrides(faults=OUTAGE))
    assert spec.fault_plans == (OUTAGE,)
    # ...but an explicit axis wins over the base plan.
    spec = small_spec(
        base=SMALL.with_overrides(faults=OUTAGE),
        fault_plans=(None, FLAKY),
    )
    assert spec.fault_plans == (None, FLAKY)


def test_fault_axis_multiplies_cells(chaos_tournament):
    spec = chaos_tournament.spec
    assert len(list(spec.cells())) == 2  # 1 pattern x 1 sync x 2 plans
    assert len(chaos_tournament.cells) == 4  # x 2 entrants
    plans = {c.plan for c in chaos_tournament.cells}
    assert plans == {"none", OUTAGE.digest}


def test_faulted_cells_record_fault_measures(chaos_tournament):
    faulted = [
        c for c in chaos_tournament.cells if c.plan != "none"
    ]
    assert faulted and all(
        c.result.time_degraded > 0.0 for c in faulted
    )
    healthy = [c for c in chaos_tournament.cells if c.plan == "none"]
    assert healthy and all(
        c.result.time_degraded == 0.0 for c in healthy
    )


def test_resilience_score_relates_healthy_to_faulted(chaos_tournament):
    for cell in chaos_tournament.cells:
        score = chaos_tournament.resilience_score(cell)
        if cell.plan == "none":
            assert score is None
        else:
            healthy = next(
                c
                for c in chaos_tournament.cells
                if c.plan == "none" and c.policy == cell.policy
            )
            assert score == pytest.approx(
                healthy.result.total_time / cell.result.total_time
            )
            assert 0.0 < score <= 1.0


def test_chaos_csv_and_render_carry_the_plan(chaos_tournament):
    csv = chaos_tournament.to_csv()
    lines = csv.strip().splitlines()
    assert lines[0] == ",".join(CSV_COLUMNS)
    assert any(OUTAGE.digest in line for line in lines[1:])
    assert OUTAGE.digest in chaos_tournament.render()


def test_chaos_digest_is_stable_across_reruns(chaos_tournament):
    assert (
        run_tournament(chaos_spec()).digest()
        == chaos_tournament.digest()
    )


def test_chaos_digest_distinguishes_plans(chaos_tournament):
    other = run_tournament(chaos_spec(fault_plans=(None, FLAKY)))
    assert other.digest() != chaos_tournament.digest()
