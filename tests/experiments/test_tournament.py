"""Tests for the policy tournament driver."""

import pytest

from repro.experiments import (
    ExperimentConfig,
    TournamentSpec,
    run_tournament,
)
from repro.experiments.tournament import CSV_COLUMNS, NO_PREFETCH

SMALL = ExperimentConfig(n_nodes=4, n_disks=4, file_blocks=200, total_reads=200)


def small_spec(**kwargs):
    kwargs.setdefault("patterns", ("lw",))
    kwargs.setdefault("policies", (NO_PREFETCH, "oracle", "adaptive"))
    kwargs.setdefault("base", SMALL)
    return TournamentSpec(**kwargs)


# ------------------------------------------------------------------- spec


def test_spec_validation():
    with pytest.raises(ValueError):
        TournamentSpec(patterns=())
    with pytest.raises(ValueError):
        TournamentSpec(sync_styles=())
    with pytest.raises(ValueError):
        TournamentSpec(policies=("oracle",))
    with pytest.raises(ValueError):
        TournamentSpec(patterns=("nope",))
    with pytest.raises(ValueError):
        TournamentSpec(sync_styles=("nope",))
    with pytest.raises(ValueError):
        TournamentSpec(policies=("none", "nope"))
    with pytest.raises(ValueError):
        TournamentSpec(policies=("none", "oracle", "oracle"))


def test_spec_skips_lw_portion_cell():
    spec = TournamentSpec(
        patterns=("lw", "gw"), sync_styles=("none", "portion")
    )
    cells = list(spec.cells())
    assert ("lw", "portion") not in cells
    assert ("lw", "none") in cells
    assert ("gw", "portion") in cells


def test_spec_config_for_none_disables_prefetch():
    spec = small_spec()
    config = spec.config_for("lw", "none", NO_PREFETCH)
    assert not config.prefetch
    config = spec.config_for("lw", "none", "adaptive")
    assert config.prefetch and config.policy == "adaptive"
    # Base sizing carries over.
    assert config.n_nodes == 4 and config.file_blocks == 200


# ------------------------------------------------------------------ smoke


@pytest.fixture(scope="module")
def small_tournament():
    return run_tournament(small_spec())


def test_tournament_runs_every_entrant(small_tournament):
    assert len(small_tournament.cells) == 3
    assert [c.policy for c in small_tournament.cells] == [
        NO_PREFETCH,
        "oracle",
        "adaptive",
    ]


def test_tournament_marks_exactly_one_winner_per_cell(small_tournament):
    winners = [c for c in small_tournament.cells if c.winner]
    assert len(winners) == 1
    best = min(
        small_tournament.cells, key=lambda c: c.result.total_time
    )
    assert winners[0] is best


def test_prefetching_beats_no_prefetch_on_sequential(small_tournament):
    by_policy = {c.policy: c.result for c in small_tournament.cells}
    # On a purely sequential pattern both the oracle and the adaptive
    # policy must beat the no-prefetch baseline.
    assert by_policy["oracle"].total_time < by_policy["none"].total_time
    assert by_policy["adaptive"].total_time < by_policy["none"].total_time


def test_adaptive_reports_distance_trajectory(small_tournament):
    adaptive = next(
        c for c in small_tournament.cells if c.policy == "adaptive"
    )
    assert adaptive.result.adaptive_distance_summary
    assert adaptive.result.adaptive_distance_trajectory
    oracle = next(
        c for c in small_tournament.cells if c.policy == "oracle"
    )
    assert not oracle.result.adaptive_distance_summary


def test_standings_and_beats_baseline(small_tournament):
    standings = small_tournament.standings()
    assert sorted(p for p, _ in standings) == ["adaptive", "none", "oracle"]
    assert sum(w for _, w in standings) == 1  # one cell
    won, total = small_tournament.beats_baseline("adaptive")
    assert (won, total) == (1, 1)


def test_render_and_csv(small_tournament):
    table = small_tournament.render()
    assert "policy tournament" in table
    assert "adaptive" in table
    csv = small_tournament.to_csv()
    lines = csv.strip().splitlines()
    assert lines[0] == ",".join(CSV_COLUMNS)
    assert len(lines) == 1 + len(small_tournament.cells)


def test_digest_is_stable_across_reruns(small_tournament):
    again = run_tournament(small_spec())
    assert small_tournament.digest() == again.digest()


def test_digest_distinguishes_specs(small_tournament):
    other = run_tournament(
        small_spec(base=SMALL.with_overrides(seed=2))
    )
    assert small_tournament.digest() != other.digest()


def test_tournament_through_executor_cache(tmp_path, small_tournament):
    from repro.perf.cache import RunCache

    cache = RunCache(tmp_path / "runs")
    first = run_tournament(small_spec(), cache=cache)
    second = run_tournament(small_spec(), cache=cache)
    assert first.digest() == second.digest() == small_tournament.digest()


def test_progress_callback():
    messages = []
    run_tournament(
        small_spec(policies=(NO_PREFETCH, "adaptive")),
        progress=messages.append,
    )
    assert messages and "cells" in messages[0]
