"""Tests for the oracle prefetch policy."""

import pytest

from repro.prefetch import OraclePolicy
from repro.sim import RandomStreams
from repro.workload import ProgressTracker, make_pattern


class FakeCache:
    """Minimal cache stand-in: a mutable set of resident blocks."""

    def __init__(self):
        self.blocks = set()

    def contains(self, block):
        return block in self.blocks


def make_oracle(pattern_name="gw", n_nodes=2, total=20, file_blocks=20,
                lead=0, seed=1, **kwargs):
    pattern = make_pattern(
        pattern_name, n_nodes=n_nodes, total_reads=total,
        file_blocks=file_blocks, rng=RandomStreams(seed), **kwargs
    )
    tracker = ProgressTracker(pattern, n_nodes)
    policy = OraclePolicy(pattern, tracker, lead=lead)
    cache = FakeCache()
    policy.bind(cache)
    return pattern, tracker, policy, cache


def test_negative_lead_rejected():
    pattern, tracker, policy, cache = make_oracle()
    with pytest.raises(ValueError):
        OraclePolicy(pattern, tracker, lead=-1)


def test_gw_proposes_in_order():
    pattern, tracker, policy, cache = make_oracle()
    i, b = policy.peek(0)
    assert (i, b) == (0, 0)
    policy.commit(0, i, b)
    i, b = policy.peek(1)  # global scope: shared claims
    assert (i, b) == (1, 1)


def test_peek_reserves_candidate():
    pattern, tracker, policy, cache = make_oracle()
    a = policy.peek(0)
    b = policy.peek(1)
    assert a != b  # second peek skips the in-flight reservation


def test_abort_releases_reservation():
    pattern, tracker, policy, cache = make_oracle()
    i, b = policy.peek(0)
    policy.abort(0, i, b)
    assert policy.peek(1) == (i, b)


def test_peek_skips_cached_blocks():
    pattern, tracker, policy, cache = make_oracle()
    cache.blocks.add(0)
    cache.blocks.add(1)
    i, b = policy.peek(0)
    assert (i, b) == (2, 2)


def test_candidates_follow_frontier():
    pattern, tracker, policy, cache = make_oracle()
    tracker.next_ref(0)  # frontier -> 0
    tracker.next_ref(1)  # frontier -> 1
    i, b = policy.peek(0)
    assert i == 2


def test_local_scopes_independent():
    pattern, tracker, policy, cache = make_oracle("lfp", total=20)
    i0, b0 = policy.peek(0)
    i1, b1 = policy.peek(1)
    assert i0 == 0 and i1 == 0  # same index, different strings
    assert b0 != b1


def test_lw_overlap_covered_via_cache():
    pattern, tracker, policy, cache = make_oracle(
        "lw", total=20, file_blocks=100
    )
    # Node 0 prefetches block 0; node 1's oracle skips it via the cache.
    i, b = policy.peek(0)
    policy.commit(0, i, b)
    cache.blocks.add(b)
    i1, b1 = policy.peek(1)
    assert b1 == b + 1


def test_portion_boundary_blocks_lrp():
    pattern, tracker, policy, cache = make_oracle(
        "lrp", n_nodes=1, total=30, file_blocks=100
    )
    portions = pattern.portions[0]
    first_portion_len = int((portions == 0).sum())
    # Claim everything in portion 0.
    for _ in range(first_portion_len):
        i, b = policy.peek(0)
        assert portions[i] == 0
        policy.commit(0, i, b)
    # Portion 1 is off limits until demand reaches it.
    assert policy.peek(0) is None
    assert not policy.exhausted(0)
    # Demand crosses into portion 1: candidates reopen.
    for _ in range(first_portion_len + 1):
        tracker.next_ref(0)
    i, b = policy.peek(0)
    assert portions[i] == 1


def test_lfp_crosses_portions():
    pattern, tracker, policy, cache = make_oracle(
        "lfp", n_nodes=1, total=30, file_blocks=100,
        portion_length=5, portion_stride=10,
    )
    # Claim all of portion 0; the next candidate is in portion 1.
    for _ in range(5):
        i, b = policy.peek(0)
        policy.commit(0, i, b)
    i, b = policy.peek(0)
    assert pattern.portions[0][i] == 1


def test_lead_skips_near_frontier():
    pattern, tracker, policy, cache = make_oracle(lead=5)
    i, b = policy.peek(0)
    assert i == 5  # frontier -1 + 1 + lead 5


def test_lead_relaxes_near_end():
    pattern, tracker, policy, cache = make_oracle(lead=50, total=20,
                                                  file_blocks=20)
    # Only 20 refs: lead 50 can never be satisfied; relaxed to 0.
    i, b = policy.peek(0)
    assert i == 0


def test_exhausted_after_all_claimed():
    pattern, tracker, policy, cache = make_oracle(total=3, file_blocks=3)
    for _ in range(3):
        i, b = policy.peek(0)
        policy.commit(0, i, b)
    assert policy.peek(0) is None
    assert policy.exhausted(0)


def test_exhausted_after_all_consumed():
    pattern, tracker, policy, cache = make_oracle(total=3, file_blocks=3)
    for _ in range(3):
        tracker.next_ref(0)
    assert policy.exhausted(0)
    assert policy.peek(0) is None


def test_mark_covered_settles_reservation():
    pattern, tracker, policy, cache = make_oracle()
    i, b = policy.peek(0)
    policy.mark_covered(0, i, b)
    ni, nb = policy.peek(0)
    assert ni == i + 1
