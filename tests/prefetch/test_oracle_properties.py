"""Property-based tests of the oracle policy's bookkeeping invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.prefetch import OraclePolicy
from repro.sim import RandomStreams
from repro.workload import ProgressTracker, make_pattern


class FakeCache:
    def __init__(self):
        self.blocks = set()

    def contains(self, block):
        return block in self.blocks


PATTERNS = ("lfp", "lrp", "lw", "gfp", "grp", "gw")


@st.composite
def oracle_setup(draw):
    pattern_name = draw(st.sampled_from(PATTERNS))
    n_nodes = draw(st.integers(min_value=1, max_value=4))
    total = n_nodes * draw(st.integers(min_value=5, max_value=20))
    seed = draw(st.integers(min_value=0, max_value=10_000))
    lead = draw(st.sampled_from([0, 2, 5]))
    pattern = make_pattern(
        pattern_name,
        n_nodes=n_nodes,
        total_reads=total,
        file_blocks=max(total, 50),
        rng=RandomStreams(seed),
    )
    tracker = ProgressTracker(pattern, n_nodes)
    policy = OraclePolicy(pattern, tracker, lead=lead)
    policy.bind(FakeCache())
    return pattern, tracker, policy, n_nodes


@given(setup=oracle_setup(), data=st.data())
@settings(max_examples=60, deadline=None)
def test_no_reference_proposed_twice_after_commit(setup, data):
    """Driving peek/commit/abort/demand arbitrarily, a committed reference
    index is never proposed again, and proposals always lie ahead of the
    frontier."""
    pattern, tracker, policy, n_nodes = setup
    committed = set()  # (scope, ref_index)
    steps = data.draw(st.lists(
        st.tuples(
            st.sampled_from(["peek_commit", "peek_abort", "demand"]),
            st.integers(min_value=0, max_value=n_nodes - 1),
        ),
        min_size=1, max_size=40,
    ))
    for action, node in steps:
        scope = node if pattern.scope == "local" else 0
        if action == "demand":
            nxt = tracker.next_ref(node)
            if nxt is not None:
                tracker.mark_consumed(node, nxt[0])
            continue
        candidate = policy.peek(node)
        if candidate is None:
            continue
        ref_index, block = candidate
        assert (scope, ref_index) not in committed, "double proposal"
        assert ref_index > tracker.frontier(node)
        assert block == int(pattern.string_for(node)[ref_index])
        if action == "peek_commit":
            policy.commit(node, ref_index, block)
            committed.add((scope, ref_index))
        else:
            policy.abort(node, ref_index, block)


@given(setup=oracle_setup())
@settings(max_examples=40, deadline=None)
def test_exhaustion_is_monotone_and_reached(setup):
    """Committing every proposal eventually exhausts each node, and
    exhaustion never reverts."""
    pattern, tracker, policy, n_nodes = setup
    for node in range(n_nodes):
        # Drain demand so portion restrictions cannot block forever.
        while True:
            nxt = tracker.next_ref(node)
            if nxt is None:
                break
            tracker.mark_consumed(node, nxt[0])
    for node in range(n_nodes):
        for _ in range(1000):
            candidate = policy.peek(node)
            if candidate is None:
                break
            policy.commit(node, *candidate)
        assert policy.exhausted(node)
    # Monotone: still exhausted on re-check.
    for node in range(n_nodes):
        assert policy.exhausted(node)


@given(setup=oracle_setup())
@settings(max_examples=40, deadline=None)
def test_proposals_respect_portion_restriction(setup):
    """For non-crossing patterns, every proposal's portion is at most the
    frontier's portion."""
    pattern, tracker, policy, n_nodes = setup
    for node in range(n_nodes):
        portions = pattern.portions_for(node)
        if len(portions) == 0:
            continue
        # Advance demand partway.
        for _ in range(len(portions) // 3):
            nxt = tracker.next_ref(node)
            if nxt is not None:
                tracker.mark_consumed(node, nxt[0])
        frontier = tracker.frontier(node)
        candidate = policy.peek(node)
        if candidate is None:
            continue
        ref_index, block = candidate
        if not pattern.crosses_for(node):
            allowed = portions[frontier] if frontier >= 0 else portions[0]
            assert portions[ref_index] <= allowed
        policy.abort(node, ref_index, block)
