"""Tests for on-the-fly predictor policies."""

import pytest

from repro.prefetch import GlobalSequentialPolicy, OBLPolicy, PortionPolicy


class FakeCache:
    def __init__(self):
        self.blocks = set()

    def contains(self, block):
        return block in self.blocks


def bind(policy):
    cache = FakeCache()
    policy.bind(cache)
    return cache


# ---------------------------------------------------------------- OBL


def test_obl_validation():
    with pytest.raises(ValueError):
        OBLPolicy(0)
    with pytest.raises(ValueError):
        OBLPolicy(100, depth=0)


def test_obl_needs_observation():
    policy = OBLPolicy(100)
    bind(policy)
    assert policy.peek(0) is None


def test_obl_proposes_next_block():
    policy = OBLPolicy(100)
    bind(policy)
    policy.observe(0, 10)
    assert policy.peek(0) == (-1, 11)


def test_obl_per_node_state():
    policy = OBLPolicy(100)
    bind(policy)
    policy.observe(0, 10)
    policy.observe(1, 50)
    assert policy.peek(1) == (-1, 51)


def test_obl_respects_file_end():
    policy = OBLPolicy(100)
    bind(policy)
    policy.observe(0, 99)
    assert policy.peek(0) is None


def test_obl_skips_cached_and_claimed():
    policy = OBLPolicy(100, depth=3)
    cache = bind(policy)
    policy.observe(0, 10)
    cache.blocks.add(11)
    assert policy.peek(0) == (-1, 12)
    policy.commit(0, -1, 12)
    assert policy.peek(0) == (-1, 13)


def test_obl_reservation_and_abort():
    policy = OBLPolicy(100)
    bind(policy)
    policy.observe(0, 10)
    assert policy.peek(0) == (-1, 11)
    # Reserved: another node's peek can't propose it.
    policy.observe(1, 10)
    assert policy.peek(1) is None
    policy.abort(0, -1, 11)
    assert policy.peek(1) == (-1, 11)


def test_obl_never_exhausted():
    policy = OBLPolicy(100)
    bind(policy)
    assert not policy.exhausted(0)


# ------------------------------------------------------------- Portion


def test_portion_validation():
    with pytest.raises(ValueError):
        PortionPolicy(100, min_run=0)
    with pytest.raises(ValueError):
        PortionPolicy(100, max_ahead=0)


def test_portion_waits_for_min_run():
    policy = PortionPolicy(100, min_run=3)
    bind(policy)
    policy.observe(0, 10)
    assert policy.peek(0) is None
    policy.observe(0, 11)
    assert policy.peek(0) is None
    policy.observe(0, 12)
    assert policy.peek(0) == (-1, 13)


def test_portion_learns_run_length():
    policy = PortionPolicy(100, min_run=2, max_ahead=5)
    bind(policy)
    # Two completed runs of length 4: 10-13, 30-33.
    for b in (10, 11, 12, 13, 30, 31, 32, 33, 50, 51):
        policy.observe(0, b)
    # Current run 50..51 (len 2); predicted length 4: propose 52, 53 only.
    assert policy.peek(0) == (-1, 52)
    policy.commit(0, -1, 52)
    assert policy.peek(0) == (-1, 53)
    policy.commit(0, -1, 53)
    # Position 5 > predicted length 4 and stride irregular: nothing.
    assert policy.peek(0) is None


def test_portion_predicts_next_portion_with_regular_stride():
    policy = PortionPolicy(200, min_run=2, max_ahead=3)
    bind(policy)
    # Runs of length 3 with stride 20: starts 0, 20, 40, 60.
    for start in (0, 20, 40, 60):
        for j in range(3):
            policy.observe(0, start + j)
    # Current run 60..62 complete per prediction; next portion at 80.
    policy.commit(0, -1, 63) if False else None
    candidate = policy.peek(0)
    assert candidate == (-1, 80)


def test_portion_per_node_independence():
    policy = PortionPolicy(100, min_run=2)
    bind(policy)
    policy.observe(0, 10)
    policy.observe(0, 11)
    assert policy.peek(1) is None
    assert policy.peek(0) == (-1, 12)


# ------------------------------------------------------ GlobalSequential


def test_global_seq_validation():
    with pytest.raises(ValueError):
        GlobalSequentialPolicy(100, density_threshold=0.0)
    with pytest.raises(ValueError):
        GlobalSequentialPolicy(100, warmup=0)


def test_global_seq_warms_up():
    policy = GlobalSequentialPolicy(100, warmup=5)
    bind(policy)
    for b in range(4):
        policy.observe(b % 2, b)
    assert policy.peek(0) is None
    policy.observe(0, 4)
    assert policy.peek(0) == (-1, 5)


def test_global_seq_rejects_sparse_streams():
    policy = GlobalSequentialPolicy(1000, warmup=5, density_threshold=0.75)
    bind(policy)
    for b in (0, 100, 200, 300, 400):  # sparse: density 5/401
        policy.observe(0, b)
    assert policy.peek(0) is None


def test_global_seq_merges_nodes():
    policy = GlobalSequentialPolicy(100, warmup=6)
    bind(policy)
    # Interleaved accesses from three nodes, globally sequential.
    for i, b in enumerate(range(6)):
        policy.observe(i % 3, b)
    assert policy.peek(2) == (-1, 6)


def test_global_seq_respects_file_end():
    policy = GlobalSequentialPolicy(10, warmup=5, max_ahead=5)
    bind(policy)
    for b in range(10):
        policy.observe(0, b)
    assert policy.peek(0) is None


# ------------------------------------------------------ GlobalPortion


def test_global_portion_validation():
    from repro.prefetch import GlobalPortionPolicy

    with pytest.raises(ValueError):
        GlobalPortionPolicy(100, max_ahead=0)
    with pytest.raises(ValueError):
        GlobalPortionPolicy(100, min_portions=1)


def test_global_portion_leads_current_portion():
    from repro.prefetch import GlobalPortionPolicy

    policy = GlobalPortionPolicy(1000)
    bind(policy)
    for b in (100, 101, 102):
        policy.observe(0, b)
    # No learned geometry yet: lead the current portion's high mark.
    assert policy.peek(0) == (-1, 103)


def test_global_portion_learns_geometry_and_crosses():
    from repro.prefetch import GlobalPortionPolicy

    policy = GlobalPortionPolicy(1000, max_ahead=4, min_portions=3)
    bind(policy)
    # Portions of length 5 at stride 20: 0-4, 20-24, 40-44, 60-64.
    for start in (0, 20, 40, 60):
        for j in range(5):
            policy.observe(j % 3, start + j)
    # Geometry learned from completed portions (0,20,40); current portion
    # is 60-64, predicted complete -> next portion candidate at 80.
    candidate = policy.peek(0)
    assert candidate == (-1, 80)


def test_global_portion_respects_predicted_length():
    from repro.prefetch import GlobalPortionPolicy

    policy = GlobalPortionPolicy(1000, max_ahead=4, min_portions=3)
    bind(policy)
    for start in (0, 20, 40):
        for j in range(5):
            policy.observe(0, start + j)
    # Current portion 60 just began (length 1 of predicted 5).
    policy.observe(0, 60)
    i, b = policy.peek(0)
    assert 61 <= b <= 64  # within the predicted portion, not past it
    policy.commit(0, i, b)
    # Exhaust the predicted portion: candidates stop at 64 then cross.
    seen = {b}
    for _ in range(5):
        nxt = policy.peek(0)
        if nxt is None:
            break
        seen.add(nxt[1])
        policy.commit(0, *nxt)
    assert all(x <= 64 or x >= 80 for x in seen)


def test_global_portion_irregular_geometry_stays_within():
    from repro.prefetch import GlobalPortionPolicy

    policy = GlobalPortionPolicy(1000, min_portions=3)
    bind(policy)
    # Irregular portions: lengths 3, 7, 4.
    for start, length in ((0, 3), (50, 7), (200, 4)):
        for j in range(length):
            policy.observe(0, start + j)
    # No regular geometry: only leads the current portion's high mark.
    candidate = policy.peek(0)
    assert candidate is not None
    assert 204 <= candidate[1] <= 209


def test_global_portion_merges_nodes():
    from repro.prefetch import GlobalPortionPolicy

    policy = GlobalPortionPolicy(1000)
    bind(policy)
    for i, b in enumerate(range(10, 16)):
        policy.observe(i % 4, b)
    assert policy.peek(2) == (-1, 16)
