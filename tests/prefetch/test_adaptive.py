"""Tests for the adaptive prefetch subsystem (classifier, feedback, policy)."""

from types import SimpleNamespace

import pytest

from repro.experiments import ExperimentConfig, run_experiment
from repro.prefetch import AdaptiveConfig, AdaptivePolicy, build_policy
from repro.prefetch.adaptive import (
    KIND_RANDOM,
    KIND_SEQUENTIAL,
    KIND_STRIDED,
    AccessClassifier,
    FeedbackConfig,
    FeedbackController,
    GlobalStreamClassifier,
)

# ------------------------------------------------------------- classifier


def test_classifier_sequential_history():
    clf = AccessClassifier()
    for block in (10, 11, 12, 13):
        clf.observe(block)
    cls = clf.classify()
    assert cls.kind == KIND_SEQUENTIAL
    assert cls.stride == 1
    assert clf.predict(3, 100) == [14, 15, 16]


def test_classifier_strided_history():
    clf = AccessClassifier()
    for block in (0, 5, 10, 15):
        clf.observe(block)
    cls = clf.classify()
    assert cls.kind == KIND_STRIDED
    assert cls.stride == 5
    assert clf.predict(2, 100) == [20, 25]


def test_classifier_backward_stride():
    clf = AccessClassifier()
    for block in (30, 28, 26, 24):
        clf.observe(block)
    assert clf.classify().kind == KIND_STRIDED
    assert clf.predict(3, 100) == [22, 20, 18]


def test_classifier_random_history_predicts_nothing():
    clf = AccessClassifier()
    for block in (7, 91, 3, 55, 20):
        clf.observe(block)
    assert clf.classify().kind == KIND_RANDOM
    assert clf.predict(5, 100) == []


def test_classifier_needs_min_run():
    clf = AccessClassifier(min_run=3)
    clf.observe(10)
    clf.observe(11)  # run of 2: candidate only
    assert clf.classify().kind == KIND_RANDOM
    clf.observe(12)  # confirmation
    assert clf.classify().kind == KIND_SEQUENTIAL


def test_classifier_repeat_access_neutral():
    clf = AccessClassifier()
    for block in (10, 11, 11, 12, 13):
        clf.observe(block)
    assert clf.classify().kind == KIND_SEQUENTIAL


def test_classifier_large_jump_is_random():
    clf = AccessClassifier(max_stride=64)
    for block in (0, 100, 200, 300):
        clf.observe(block)
    assert clf.classify().kind == KIND_RANDOM


def test_classifier_prediction_respects_file_end():
    clf = AccessClassifier()
    for block in (96, 97, 98):
        clf.observe(block)
    assert clf.predict(5, 100) == [99]


def test_classifier_learns_portion_boundary():
    # Two completed 5-block portions at start-stride 20, then a third:
    # prediction must stop at the estimated portion end instead of
    # extrapolating into the gap, and continue in the predicted next
    # portion (regular start stride).
    clf = AccessClassifier()
    for start in (0, 20, 40):
        for off in range(5):
            clf.observe(start + off)
    assert clf.expected_run_length() == 5
    assert clf.start_stride() == 20
    # Last access was 44 (portion start 40, length 5 -> last block 44).
    assert clf.predict(4, 1000) == [60, 61, 62, 63]


def test_classifier_caps_at_boundary_without_regular_stride():
    clf = AccessClassifier()
    for start in (0, 37):  # two portions, irregular spacing
        for off in range(5):
            clf.observe(start + off)
    clf.observe(80)  # third portion begins
    clf.observe(81)
    clf.observe(82)
    assert clf.expected_run_length() == 5
    assert clf.start_stride() is None
    # Estimated end of the current portion is 84: only 83, 84 predicted.
    assert clf.predict(6, 1000) == [83, 84]


def test_classifier_validation():
    with pytest.raises(ValueError):
        AccessClassifier(min_run=1)
    with pytest.raises(ValueError):
        AccessClassifier(max_stride=0)


def test_global_classifier_dense_stream():
    clf = GlobalStreamClassifier(100, warmup=4)
    for block in (0, 2, 1, 3, 4, 6, 5):
        clf.observe(block)
    assert clf.sequential()
    assert clf.frontier == 6
    assert clf.predict(3) == [7, 8, 9]


def test_global_classifier_sparse_stream_silent():
    clf = GlobalStreamClassifier(1000, warmup=4)
    for block in (0, 100, 200, 300, 400):
        clf.observe(block)
    assert not clf.sequential()
    assert clf.predict(3) == []


def test_global_classifier_warmup():
    clf = GlobalStreamClassifier(100, warmup=8)
    for block in range(5):
        clf.observe(block)
    assert not clf.sequential()


def test_global_classifier_prediction_respects_file_end():
    clf = GlobalStreamClassifier(10, warmup=2)
    for block in range(8):
        clf.observe(block)
    assert clf.predict(5) == [8, 9]


# --------------------------------------------------------------- feedback


def test_feedback_grow_and_shrink():
    ctrl = FeedbackController(
        FeedbackConfig(
            initial_distance=2,
            max_distance=8,
            grow_step=1.0,
            shrink_factor=0.5,
        )
    )
    assert ctrl.distance == 2
    ctrl.grow("demand_stall")
    assert ctrl.distance == 3
    ctrl.shrink("unused_eviction")
    assert ctrl.distance == 2  # 3.0 * 0.5 = 1.5 -> rounds to 2
    ctrl.shrink("unused_eviction")
    assert ctrl.distance == 1


def test_feedback_clamps_to_bounds():
    ctrl = FeedbackController(
        FeedbackConfig(
            initial_distance=2,
            min_distance=1,
            max_distance=4,
            grow_step=2.0,
            shrink_factor=0.1,
        )
    )
    for _ in range(10):
        ctrl.grow("prefetch_hit")
    assert ctrl.distance == 4
    for _ in range(10):
        ctrl.shrink("daemon_theft")
    assert ctrl.distance == 1


def test_feedback_degree_follows_distance():
    ctrl = FeedbackController(
        FeedbackConfig(initial_distance=1, max_distance=12, degree_cap=4)
    )
    assert ctrl.degree == 1
    for _ in range(11):
        ctrl.grow("demand_stall")
    assert ctrl.distance == 12
    assert ctrl.degree == 4  # (12+1)//2 = 6, capped at 4


def test_feedback_counts_signals():
    ctrl = FeedbackController()
    ctrl.grow("demand_stall")
    ctrl.grow("demand_stall")
    ctrl.shrink("write_off")
    assert ctrl.signals == {"demand_stall": 2, "write_off": 1}


def test_feedback_on_change_fires_on_integer_steps():
    changes = []
    ctrl = FeedbackController(
        FeedbackConfig(initial_distance=2, grow_step=0.25),
        on_change=lambda: changes.append(ctrl.distance),
    )
    for _ in range(4):
        ctrl.grow("demand_stall")
    assert changes == [3]  # 2.25, 2.5 (rounds to 3? no: 2.5+0.5=3.0 -> 3)


def test_feedback_config_validation():
    with pytest.raises(ValueError):
        FeedbackConfig(min_distance=0)
    with pytest.raises(ValueError):
        FeedbackConfig(initial_distance=9, max_distance=8)
    with pytest.raises(ValueError):
        FeedbackConfig(grow_step=0)
    with pytest.raises(ValueError):
        FeedbackConfig(shrink_factor=1.0)
    with pytest.raises(ValueError):
        FeedbackConfig(overrun_tolerance=-1)
    with pytest.raises(ValueError):
        FeedbackConfig(degree_cap=0)


# ----------------------------------------------------------------- policy


class FakeCache:
    """The slice of BlockCache the adaptive policy touches."""

    def __init__(self, n_nodes=2):
        self.blocks = set()
        self.env = SimpleNamespace(now=0.0)
        self.machine = SimpleNamespace(
            nodes=[
                SimpleNamespace(idle_periods=[]) for _ in range(n_nodes)
            ]
        )
        self.unused_prefetch_observer = None
        self.resilience = None

    def contains(self, block):
        return block in self.blocks


def make_policy(n_nodes=2, file_blocks=1000, **feedback):
    policy = AdaptivePolicy(
        file_blocks,
        n_nodes,
        AdaptiveConfig(feedback=FeedbackConfig(**feedback)),
    )
    cache = FakeCache(n_nodes)
    policy.bind(cache)
    return policy, cache


def test_policy_validation():
    with pytest.raises(ValueError):
        AdaptivePolicy(1000, 0)


def test_policy_predicts_from_local_history_only():
    policy, _ = make_policy()
    for block in (10, 11, 12):
        policy.observe(0, block)
    ref_index, block = policy.peek(0)
    assert ref_index == -1  # never a reference-string index
    assert block == 13


def test_policy_peek_reserves_and_commit_claims():
    policy, _ = make_policy()
    for block in (10, 11, 12):
        policy.observe(0, block)
    _, block = policy.peek(0)
    # Reserved: a second peek may not re-propose the same block.
    second = policy.peek(0)
    assert second is None or second[1] != block
    policy.commit(0, -1, block)
    third = policy.peek(0)
    assert third is None or third[1] != block


def test_policy_degree_limits_outstanding():
    policy, _ = make_policy(max_distance=4, initial_distance=4)
    for block in (10, 11, 12):
        policy.observe(0, block)
    committed = []
    while True:
        proposal = policy.peek(0)
        if proposal is None:
            break
        policy.commit(0, *proposal)
        committed.append(proposal[1])
    # Degree at distance 4 is (4+1)//2 = 2 per scope; the single-node
    # stream is visible to both the local and the merged-stream global
    # classifier, so each scope commits up to its own degree.
    assert len(committed) == 4


def test_policy_hit_frees_slot_and_grows():
    policy, cache = make_policy(max_distance=4, initial_distance=4)
    for block in (10, 11, 12):
        policy.observe(0, block)
    proposal = policy.peek(0)
    policy.commit(0, *proposal)
    cache.blocks.add(proposal[1])
    before = policy.signal_counts().get("prefetch_hit", 0)
    policy.observe(0, proposal[1])  # the consumer arrives
    assert policy.signal_counts()["prefetch_hit"] == before + 1
    assert policy._outstanding_local[0] == 0


def test_policy_demand_stall_grows_distance():
    policy, cache = make_policy(grow_step=1.0)
    start = policy._controllers[0].distance
    policy.observe(0, 10)  # absent from cache: a stall
    assert policy._controllers[0].distance == start + 1
    cache.blocks.add(11)
    before = policy._controllers[0].distance
    policy.observe(0, 11)  # present: no stall signal
    assert policy._controllers[0].distance == before


def test_policy_unused_eviction_shrinks_and_unclaims():
    policy, cache = make_policy(initial_distance=8, max_distance=8)
    for block in (10, 11, 12):
        policy.observe(0, block)
    proposal = policy.peek(0)
    policy.commit(0, *proposal)
    assert cache.unused_prefetch_observer is not None
    cache.unused_prefetch_observer(0, proposal[1], "evicted")
    assert policy._outstanding_local[0] == 0
    assert policy.signal_counts()["unused_eviction"] == 1
    assert proposal[1] not in policy._claimed  # re-prefetchable


def test_policy_daemon_theft_shrinks():
    policy, cache = make_policy(
        initial_distance=8, max_distance=8, overrun_tolerance=1.0
    )
    cache.machine.nodes[0].idle_periods.append(
        SimpleNamespace(overrun=5.0)
    )
    policy.observe(0, 10)
    assert policy.signal_counts()["daemon_theft"] == 1
    # Already-scanned periods are not recounted.
    policy.observe(0, 11)
    assert policy.signal_counts()["daemon_theft"] == 1


def test_policy_abort_shrinks_on_budget_pressure():
    policy, _ = make_policy(initial_distance=8, max_distance=8)
    for block in (10, 11, 12):
        policy.observe(0, block)
    proposal = policy.peek(0)
    before = policy._controllers[0].distance
    policy.abort(0, *proposal)
    assert policy.signal_counts()["budget_pressure"] == 1
    assert policy._controllers[0].distance < before


def test_policy_writes_off_stale_commits():
    policy, cache = make_policy(initial_distance=4, max_distance=4)
    for block in (10, 11, 12):
        policy.observe(0, block)
    proposal = policy.peek(0)
    policy.commit(0, *proposal)
    assert policy._outstanding_local[0] == 1
    # Long after the write-off horizon, the slot is reclaimed.
    cache.env.now = policy.config.write_off_ms + 1.0
    policy.peek(0)
    assert policy.signal_counts().get("write_off", 0) >= 1
    assert proposal[1] not in policy._issuer


def test_policy_global_scope_covers_merged_stream():
    # Nodes alternate on one shared sequential stream: each node's own
    # history is stride 2, but the merged stream is dense.
    policy, _ = make_policy(n_nodes=2)
    for block in range(12):
        policy.observe(block % 2, block)
    proposal = policy.peek(0)
    assert proposal is not None


def test_policy_trajectory_and_summary():
    policy, _ = make_policy(grow_step=1.0)
    for block in (10, 11, 12, 13, 14):
        policy.observe(0, block)  # stalls grow the distance
    trajectory = policy.distance_trajectory()
    assert len(trajectory) >= 2
    times = [t for t, _ in trajectory]
    assert times == sorted(times)
    summary = policy.distance_summary()
    assert summary["final"] > summary["initial"]
    assert summary["min"] <= summary["initial"] <= summary["max"]
    assert summary["changes"] >= 1


def test_policy_never_exhausts():
    policy, _ = make_policy()
    assert not policy.exhausted(0)


# ------------------------------------------------- factory / no oracle data


def test_factory_builds_adaptive_without_reference_string():
    config = ExperimentConfig(policy="adaptive", n_nodes=4, n_disks=4)
    policy = build_policy(config)  # no pattern, no tracker
    assert isinstance(policy, AdaptivePolicy)
    assert policy.n_nodes == 4
    assert policy.file_blocks == config.file_blocks


def test_factory_oracle_requires_reference_string():
    config = ExperimentConfig(policy="oracle", n_nodes=4, n_disks=4)
    with pytest.raises(ValueError):
        build_policy(config)


def test_adaptive_config_knobs_flow_from_experiment_config():
    config = ExperimentConfig(
        policy="adaptive",
        adaptive_min_distance=2,
        adaptive_initial_distance=3,
        adaptive_max_distance=9,
    )
    policy = build_policy(config)
    fb = policy.config.feedback
    assert (fb.min_distance, fb.initial_distance, fb.max_distance) == (
        2,
        3,
        9,
    )


def test_experiment_config_rejects_bad_adaptive_bounds():
    with pytest.raises(ValueError):
        ExperimentConfig(
            adaptive_min_distance=5,
            adaptive_initial_distance=2,
            adaptive_max_distance=9,
        )


# ----------------------------------------------------------- end-to-end


SMALL = dict(n_nodes=4, n_disks=4, file_blocks=200, total_reads=200)


def test_adaptive_runs_end_to_end():
    result = run_experiment(
        ExperimentConfig(pattern="lw", policy="adaptive", **SMALL)
    )
    assert result.blocks_prefetched > 0
    assert result.hit_ratio > 0
    assert result.adaptive_distance_summary["initial"] == 2.0
    assert len(result.adaptive_distance_trajectory) >= 1


def test_adaptive_beats_no_prefetch_on_sequential():
    config = ExperimentConfig(pattern="lw", policy="adaptive", **SMALL)
    adaptive = run_experiment(config)
    baseline = run_experiment(config.paired_baseline())
    assert adaptive.total_time < baseline.total_time


def test_adaptive_is_deterministic():
    from repro.analysis.audit import run_twice_and_diff

    config = ExperimentConfig(pattern="gfp", policy="adaptive", **SMALL)
    report = run_twice_and_diff(config)
    assert report.identical


def test_nonadaptive_results_have_empty_trajectory():
    result = run_experiment(
        ExperimentConfig(pattern="lw", policy="obl", **SMALL)
    )
    assert result.adaptive_distance_trajectory == []
    assert result.adaptive_distance_summary == {}


# ------------------------------------------------------- dirty pressure


def test_bind_attaches_write_pressure_observer():
    policy, cache = make_policy()
    assert cache.write_pressure_observer is not None


def test_dirty_pressure_shrinks_global_scope_once_per_excursion():
    policy, cache = make_policy(initial_distance=8, max_distance=8)
    before = policy._global_controller.distance
    # Crossing the background limit latches exactly one shrink...
    cache.write_pressure_observer(0, 3, 2)
    cache.write_pressure_observer(0, 4, 2)
    cache.write_pressure_observer(1, 5, 2)
    assert policy.signal_counts()["dirty_pressure"] == 1
    assert policy._global_controller.distance < before
    # ... until the dirty population falls back below it.
    cache.write_pressure_observer(0, 2, 2)
    assert policy.signal_counts()["dirty_pressure"] == 1
    cache.write_pressure_observer(0, 3, 2)
    assert policy.signal_counts()["dirty_pressure"] == 2


def test_dirty_pressure_ignored_below_background_limit():
    policy, cache = make_policy()
    cache.write_pressure_observer(0, 1, 4)
    cache.write_pressure_observer(0, 2, 4)
    assert "dirty_pressure" not in policy.signal_counts()


def test_adaptive_rw_run_emits_dirty_pressure():
    """End to end: an adaptive read-write run under default thresholds
    actually sees the signal (the cell the feedback loop was added for)."""
    result = run_experiment(
        ExperimentConfig(pattern="lfp-rw", policy="adaptive", **SMALL)
    )
    assert result.total_writes > 0
    assert result.adaptive_distance_summary  # the loop was live
