"""Tests for the idle-time prefetch daemon."""

import pytest

from repro.machine import IdleKind
from repro.prefetch import DaemonConfig, OraclePolicy, PrefetchDaemon
from repro.sim import RandomStreams
from repro.workload import ProgressTracker, make_pattern

from ..helpers import build_stack


def daemon_stack(pattern_name="gw", n_nodes=2, total=20, file_blocks=20,
                 daemon_config=DaemonConfig(), lead=0):
    env, machine, file, cache, server, metrics = build_stack(
        n_nodes=n_nodes, n_disks=n_nodes, file_blocks=file_blocks
    )
    pattern = make_pattern(
        pattern_name, n_nodes=n_nodes, total_reads=total,
        file_blocks=file_blocks, rng=RandomStreams(1),
    )
    tracker = ProgressTracker(pattern, n_nodes)
    policy = OraclePolicy(pattern, tracker, lead=lead)
    policy.bind(cache)
    daemons = [
        PrefetchDaemon(node, cache, policy, metrics, daemon_config)
        for node in machine.nodes
    ]
    return env, machine, cache, server, metrics, tracker, policy, daemons


def test_daemon_config_validation():
    with pytest.raises(ValueError):
        DaemonConfig(min_prefetch_time=-1.0)
    with pytest.raises(ValueError):
        DaemonConfig(max_consecutive_failures=0)


def test_daemon_idle_only():
    """No prefetching happens while the user never goes idle."""
    env, machine, cache, server, metrics, *_ = daemon_stack()

    def busy_user(node):
        cpu = yield from node.acquire_cpu()
        yield env.timeout(100.0)
        node.release_cpu(cpu)

    env.process(busy_user(machine.nodes[0]))
    env.run(until=100.0)
    assert metrics.blocks_prefetched == 0


def test_daemon_prefetches_during_idle():
    env, machine, cache, server, metrics, tracker, policy, daemons = (
        daemon_stack()
    )
    node = machine.nodes[0]

    def user():
        cpu = yield from node.acquire_cpu()
        _, cpu = yield from node.idle_wait(
            cpu, env.timeout(50.0), IdleKind.SYNC
        )
        node.release_cpu(cpu)

    env.process(user())
    env.run(until=200.0)
    assert metrics.blocks_prefetched > 0
    assert metrics.prefetch_action_times.count > 0


def test_daemon_overrun_measured():
    """An action started just before wake-up delays the user: overrun > 0."""
    env, machine, cache, server, metrics, *_ = daemon_stack()
    node = machine.nodes[0]

    def user():
        cpu = yield from node.acquire_cpu()
        # Wake at a time that is very likely mid-action.
        _, cpu = yield from node.idle_wait(
            cpu, env.timeout(4.0), IdleKind.SYNC
        )
        node.release_cpu(cpu)

    env.process(user())
    env.run(until=100.0)
    assert node.idle_periods[0].overrun > 0.0


def test_daemon_stops_when_policy_exhausted():
    env, machine, cache, server, metrics, tracker, policy, daemons = (
        daemon_stack(total=4, file_blocks=4)
    )
    node = machine.nodes[0]

    def user():
        cpu = yield from node.acquire_cpu()
        _, cpu = yield from node.idle_wait(
            cpu, env.timeout(500.0), IdleKind.SYNC
        )
        node.release_cpu(cpu)

    env.process(user())
    env.run(until=600.0)
    # 4 blocks prefetched, then node 0's daemon terminated.  (Node 1's
    # daemon never woke: its user never idled, so it never checked.)
    assert metrics.blocks_prefetched == 4
    assert not daemons[0].process.is_alive


def test_daemon_stop_method():
    env, machine, cache, server, metrics, tracker, policy, daemons = (
        daemon_stack()
    )
    node = machine.nodes[0]
    daemons[0].stop()
    daemons[1].stop()

    def user():
        cpu = yield from node.acquire_cpu()
        _, cpu = yield from node.idle_wait(
            cpu, env.timeout(50.0), IdleKind.SYNC
        )
        node.release_cpu(cpu)

    env.process(user())
    env.run(until=100.0)
    assert metrics.blocks_prefetched == 0


def test_min_prefetch_time_throttles():
    """With an estimate shorter than min_prefetch_time, the daemon sits
    out the idle period."""
    env, machine, cache, server, metrics, *_ = daemon_stack(
        daemon_config=DaemonConfig(min_prefetch_time=100.0)
    )
    node = machine.nodes[0]

    def user():
        cpu = yield from node.acquire_cpu()
        # First idle period trains the estimator (inf estimate: actions run).
        _, cpu = yield from node.idle_wait(
            cpu, env.timeout(10.0), IdleKind.SYNC
        )
        before = metrics.prefetch_outcomes.get("success", 0)
        # Second idle period: estimate ~10 ms < 100 ms: no new actions.
        _, cpu = yield from node.idle_wait(
            cpu, env.timeout(10.0), IdleKind.SYNC
        )
        node.release_cpu(cpu)

    env.process(user())
    env.run(until=200.0)
    # Daemon 0 ran at most during the first window; far fewer actions than
    # an unthrottled daemon would do in 20 ms of idle.
    total_actions = sum(daemons_actions(machine))
    assert total_actions <= 10


def daemons_actions(machine):
    out = []
    for node in machine.nodes:
        if node.daemon is not None:
            out.append(node.daemon.action_times.count)
    return out


def test_failure_cap_bounds_spinning():
    """With an exhausted... non-exhausted policy that always fails, the cap
    stops the daemon within one idle period."""
    from repro.prefetch import OBLPolicy

    env, machine, file, cache, server, metrics = build_stack(
        n_nodes=1, n_disks=1, file_blocks=4
    )
    policy = OBLPolicy(4)
    policy.bind(cache)
    # OBL with no observations: peek always None, never exhausted.
    daemon = PrefetchDaemon(
        machine.nodes[0], cache, policy, metrics,
        DaemonConfig(max_consecutive_failures=5),
    )
    node = machine.nodes[0]

    def user():
        cpu = yield from node.acquire_cpu()
        _, cpu = yield from node.idle_wait(
            cpu, env.timeout(1000.0), IdleKind.SYNC
        )
        node.release_cpu(cpu)

    env.process(user())
    env.run(until=1500.0)
    assert daemon.outcomes.get("no_candidate", 0) == 5
