"""Fault-aware vs fault-oblivious adaptive prefetching, head to head.

The acceptance criterion for the resilience-signal plumbing: on the
blessed chaos cells the fault-aware ``adaptive`` policy must finish
*strictly faster* than ``adaptive-nofault`` (same AIMD controller, no
resilience signals), and on fault-free runs the two must be
schedule-identical — fault-awareness costs nothing until a fault
actually happens.

The blessed cells cover all four fault kinds.  They are cells where
throttling genuinely pays: long enough outages that blacklisting the
victim disk redirects prefetch capacity instead of merely delaying it.
(Known non-wins — very short outages whose breaker cooldown outlives
the fault, and transient windows on shared-read patterns — are
documented in docs/faults.md rather than blessed here.)
"""

import pytest

from repro.analysis.audit import run_with_audit
from repro.experiments import ExperimentConfig, run_experiment
from repro.faults import (
    FailSlow,
    FailStop,
    FaultPlan,
    HotSpot,
    ResiliencePolicy,
    TransientErrors,
)

_RES = ResiliencePolicy(
    timeout=240.0, max_retries=40, backoff_base=10.0, backoff_max=120.0
)

BLESSED_CELLS = {
    "lw-fail-stop": (
        "lw", FailStop(disk=0, at=200.0, recover=1600.0)
    ),
    "lw-fail-slow": (
        "lw", FailSlow(disk=1, factor=5.0, start=300.0, end=1300.0)
    ),
    "gw-transient": (
        "gw",
        TransientErrors(disk=2, probability=0.4, start=200.0, end=1200.0),
    ),
    "gw-hot-spot": (
        "gw", HotSpot(disk=3, alpha=1.2, start=200.0, end=1200.0)
    ),
}


def cell_config(pattern, policy, faults):
    return ExperimentConfig(
        pattern=pattern,
        sync_style="none",
        policy=policy,
        n_nodes=4,
        n_disks=4,
        file_blocks=200,
        total_reads=200,
        faults=faults,
        record_trace=False,
    )


@pytest.mark.parametrize("cell", sorted(BLESSED_CELLS))
def test_fault_aware_beats_vanilla_on_blessed_cells(cell):
    pattern, spec = BLESSED_CELLS[cell]
    plan = FaultPlan(faults=(spec,), resilience=_RES)
    aware = run_experiment(cell_config(pattern, "adaptive", plan))
    vanilla = run_experiment(
        cell_config(pattern, "adaptive-nofault", plan)
    )
    assert aware.total_time < vanilla.total_time, (
        f"{cell}: fault-aware {aware.total_time:.1f} ms vs "
        f"vanilla {vanilla.total_time:.1f} ms"
    )


@pytest.mark.parametrize("pattern", ["lw", "gw", "lfp", "gfp"])
def test_fault_awareness_is_free_on_healthy_runs(pattern):
    """With no resilience layer wired, `adaptive` and `adaptive-nofault`
    execute the *same schedule*: identical event-trace digests, not just
    equal totals."""
    aware = run_with_audit(cell_config(pattern, "adaptive", None))
    vanilla = run_with_audit(
        cell_config(pattern, "adaptive-nofault", None)
    )
    assert aware.trace_digest == vanilla.trace_digest
    assert aware.result.total_time == vanilla.result.total_time
