"""Tests for minimum-prefetch-lead arithmetic."""

import pytest

from repro.prefetch import earliest_candidate_index, effective_lead


def test_negative_lead_rejected():
    with pytest.raises(ValueError):
        effective_lead(-1, 0, 100)


def test_zero_lead_is_frontier_plus_one():
    assert earliest_candidate_index(0, 5, 100) == 6
    assert earliest_candidate_index(0, -1, 100) == 0


def test_lead_shifts_candidates():
    assert earliest_candidate_index(20, 5, 100) == 26
    assert effective_lead(20, 5, 100) == 20


def test_lead_relaxed_near_end():
    # 100 refs, frontier 90: only 9 remain; lead 20 is dropped.
    assert effective_lead(20, 90, 100) == 0
    assert earliest_candidate_index(20, 90, 100) == 91


def test_lead_boundary_exact():
    # remaining == lead: relaxed (restriction needs remaining > lead).
    assert effective_lead(10, 89, 100) == 0
    # remaining == lead + 1: enforced.
    assert effective_lead(10, 88, 100) == 10
