"""Tests for the policy interface and registry."""

import pytest

from repro.prefetch import NullPolicy, make_policy, policy_names
from repro.prefetch.policy import register_policy


def test_null_policy_never_proposes():
    policy = NullPolicy()
    assert policy.peek(0) is None
    assert policy.exhausted(0)
    with pytest.raises(RuntimeError):
        policy.commit(0, 0, 0)
    with pytest.raises(RuntimeError):
        policy.mark_covered(0, 0, 0)
    with pytest.raises(RuntimeError):
        policy.abort(0, 0, 0)


def test_registry_contains_builtins():
    names = policy_names()
    for expected in ("null", "oracle", "obl", "portion", "global-seq"):
        assert expected in names


def test_make_policy_unknown_rejected():
    with pytest.raises(ValueError, match="unknown policy"):
        make_policy("clairvoyant")


def test_make_policy_builds_null():
    assert isinstance(make_policy("null"), NullPolicy)


def test_duplicate_registration_rejected():
    with pytest.raises(ValueError):
        register_policy("null")(NullPolicy)


def test_observe_default_noop():
    NullPolicy().observe(0, 5)  # must not raise
