"""Tests for the command-line interface."""

import pytest

from repro.cli import FIGURE_IDS, build_parser, main


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_figure_ids_cover_design_index():
    for fig in ("fig1", "fig3", "fig8", "fig12", "fig16", "vd",
                "vf-buffers", "vf-patterns", "ext-predictors",
                "ext-scalability"):
        assert fig in FIGURE_IDS


def test_run_command(capsys):
    rc = main([
        "run", "--pattern", "gw", "--sync", "none", "--compute", "0",
        "--seed", "2",
    ])
    assert rc == 0
    out = capsys.readouterr().out
    assert "total time (ms)" in out
    assert "no-prefetch" in out
    assert "hit ratio" in out


def test_run_command_rejects_bad_pattern():
    with pytest.raises(SystemExit):
        main(["run", "--pattern", "zigzag"])


def test_run_accepts_every_registered_policy():
    from repro.prefetch.factory import policy_choices

    parser = build_parser()
    for policy in policy_choices():
        args = parser.parse_args(["run", "--policy", policy])
        assert args.policy == policy


_TOURNAMENT_SMALL = [
    "--nodes", "4", "--disks", "4", "--file-blocks", "200",
    "--reads", "200",
]


def test_tournament_command(tmp_path, capsys):
    csv_path = tmp_path / "league.csv"
    digest_path = tmp_path / "digest.txt"
    rc = main([
        "tournament", "--patterns", "lw", "--policies", "none", "adaptive",
        "--csv", str(csv_path), "--digest-out", str(digest_path),
        *_TOURNAMENT_SMALL,
    ])
    assert rc == 0
    out = capsys.readouterr().out
    assert "policy tournament" in out
    assert "standings (cells won):" in out
    assert "adaptive beat no-prefetch in 1/1 cells" in out
    assert csv_path.read_text().startswith("pattern,sync,faults,policy,")
    digest = digest_path.read_text().strip()
    assert len(digest) == 32
    assert f"tournament digest: {digest}" in out


def test_tournament_digest_check(tmp_path, capsys):
    digest_path = tmp_path / "digest.txt"
    argv = [
        "tournament", "--patterns", "lw", "--policies", "none", "adaptive",
        *_TOURNAMENT_SMALL,
    ]
    assert main([*argv, "--digest-out", str(digest_path)]) == 0
    capsys.readouterr()
    assert main([*argv, "--check-digest", str(digest_path)]) == 0
    assert "digest check: PASS" in capsys.readouterr().out
    digest_path.write_text("0" * 32 + "\n")
    assert main([*argv, "--check-digest", str(digest_path)]) == 1


def _write_outage_plan(tmp_path):
    from repro.faults import FailStop, FaultPlan, ResiliencePolicy

    plan = FaultPlan(
        faults=(FailStop(disk=0, at=200.0, recover=1600.0),),
        resilience=ResiliencePolicy(
            timeout=240.0, max_retries=40, backoff_base=10.0,
            backoff_max=120.0,
        ),
        name="outage",
    )
    path = tmp_path / "outage.json"
    plan.save(str(path))
    return path, plan


def test_tournament_fault_plans_axis(tmp_path, capsys):
    plan_path, plan = _write_outage_plan(tmp_path)
    csv_path = tmp_path / "league.csv"
    rc = main([
        "tournament", "--patterns", "lw", "--policies", "none", "adaptive",
        "--fault-plans", "none", str(plan_path),
        "--csv", str(csv_path),
        *_TOURNAMENT_SMALL,
    ])
    assert rc == 0
    out = capsys.readouterr().out
    # Both the healthy and the faulted slice of the matrix ran...
    assert plan.digest in out
    # ...and the faulted rows carry the plan in the CSV.
    csv = csv_path.read_text()
    assert plan.digest in csv


def test_soak_command(tmp_path, capsys):
    csv_path = tmp_path / "soak.csv"
    digest_path = tmp_path / "digest.txt"
    plans_dir = tmp_path / "plans"
    rc = main([
        "soak", "--plans", "2", "--nodes", "4", "--disks", "4",
        "--file-blocks", "200", "--reads", "200",
        "--csv", str(csv_path), "--digest-out", str(digest_path),
        "--save-plans", str(plans_dir),
    ])
    assert rc == 0
    out = capsys.readouterr().out
    assert "chaos soak" in out
    assert "invariant sweep" in out and "PASS" in out
    assert csv_path.read_text().startswith("plan,plan_digest,")
    assert len(digest_path.read_text().strip()) == 32
    saved = sorted(plans_dir.glob("soak-*.json"))
    assert len(saved) == 2


def test_soak_digest_check(tmp_path, capsys):
    digest_path = tmp_path / "digest.txt"
    argv = [
        "soak", "--plans", "1", "--nodes", "4", "--disks", "4",
        "--file-blocks", "200", "--reads", "200",
    ]
    assert main([*argv, "--digest-out", str(digest_path)]) == 0
    capsys.readouterr()
    assert main([*argv, "--check-digest", str(digest_path)]) == 0
    assert "digest check: PASS" in capsys.readouterr().out
    digest_path.write_text("0" * 32 + "\n")
    assert main([*argv, "--check-digest", str(digest_path)]) == 1


def test_tournament_rejects_unknown_entrant(capsys):
    rc = main([
        "tournament", "--patterns", "lw", "--policies", "none", "zigzag",
        *_TOURNAMENT_SMALL,
    ])
    assert rc == 2
    assert "unknown entrant" in capsys.readouterr().err


def test_analyze_command(tmp_path, capsys):
    # Produce a trace with a tiny run, save it, analyze it.
    from repro.experiments import ExperimentConfig, run_experiment

    r = run_experiment(
        ExperimentConfig(
            pattern="gw", n_nodes=4, n_disks=4, file_blocks=40,
            total_reads=40, compute_mean=0.0, record_trace=True,
            prefetch=False,
        )
    )
    path = tmp_path / "t.jsonl"
    r.trace.save(path)
    rc = main(["analyze", str(path), "--cache-sizes", "10", "40"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "40 accesses" in out
    assert "LRU hit ratio" in out
    assert "sequentiality" in out


def test_figure_command_unknown_id():
    with pytest.raises(SystemExit):
        main(["figure", "fig99"])


def test_figure_scatter_flag_parses():
    parser = build_parser()
    args = parser.parse_args(["figure", "fig3", "--scatter"])
    assert args.scatter
    args = parser.parse_args(["figure", "fig3"])
    assert not args.scatter


def test_figure_command_standalone(capsys):
    """Run a cheap standalone figure end to end through the CLI."""
    rc = main(["figure", "ext-scalability", "--seed", "1"])
    out = capsys.readouterr().out
    assert "Scalability" in out
    assert "check prefetch_wins_at_every_scale: PASS" in out
    assert rc == 0


def test_sweep_command(capsys):
    rc = main([
        "sweep", "lead", "0", "10",
        "--pattern", "gw", "--sync", "per-proc", "--seed", "2",
    ])
    assert rc == 0
    out = capsys.readouterr().out
    assert "sweep lead" in out
    assert "total red %" in out


def test_sweep_command_value_casting():
    parser = build_parser()
    args = parser.parse_args(["sweep", "policy", "oracle", "obl"])
    assert args.values == ["oracle", "obl"]


def test_report_command(tmp_path, capsys, monkeypatch):
    """Report command plumbing (figures stubbed to keep the test fast)."""
    from repro.experiments import report_gen
    from repro.experiments.figures import FigureData

    monkeypatch.setattr(
        report_gen,
        "collect_all_figures",
        lambda seed, progress=None: [
            FigureData("figX", "T", ["a"], [(1,)], checks={"ok": True})
        ],
    )
    out_path = tmp_path / "R.md"
    rc = main(["report", "-o", str(out_path)])
    assert rc == 0
    assert "1/1 checks pass" in capsys.readouterr().out
    assert out_path.exists()


_RW_SMALL = [
    "--nodes", "4", "--disks", "4", "--file-blocks", "160",
    "--reads", "160", "--compute", "0", "--seed", "2",
]


def test_run_command_rw_pattern_shows_write_measures(capsys):
    rc = main(["run", "--pattern", "lfp-rw", "--sync", "none", *_RW_SMALL])
    assert rc == 0
    out = capsys.readouterr().out
    assert "total writes" in out
    assert "dirty peak (buffers)" in out
    assert "throttle stalls" in out


def test_run_command_read_only_report_has_no_write_rows(capsys):
    rc = main(["run", "--pattern", "gw", "--sync", "none", *_RW_SMALL])
    assert rc == 0
    out = capsys.readouterr().out
    assert "total writes" not in out


def test_run_write_flags_parse_and_validate():
    parser = build_parser()
    args = parser.parse_args([
        "run", "--pattern", "wstream", "--write-mode", "write-through",
        "--dirty-ratio", "0.4", "--dirty-background-ratio", "0.1",
    ])
    assert args.write_mode == "write-through"
    assert args.dirty_ratio == 0.4
    with pytest.raises(SystemExit):
        parser.parse_args(["run", "--write-mode", "journal"])


def test_chaos_writeback_is_a_known_figure():
    assert "chaos-writeback" in FIGURE_IDS


def test_trace_synth_write_fraction(tmp_path, capsys):
    path = tmp_path / "rw.jsonl"
    rc = main([
        "trace", "synth", "bursty", "-o", str(path),
        "--nodes", "4", "--file-blocks", "200", "--reads", "25",
        "--seed", "3", "--write-fraction", "0.3",
    ])
    assert rc == 0
    out = capsys.readouterr().out
    assert "writes)" in out
    rc = main(["trace", "replay", str(path), "--disks", "4"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "total writes" in out
