"""Tests for the FileServer read path timing anatomy."""

import pytest

from repro.machine import IdleKind

from ..helpers import build_stack, user_read, user_read_many


def test_miss_is_self_io_idle():
    env, machine, file, cache, server, metrics = build_stack()
    node = machine.nodes[0]
    env.process(user_read(server, node, 3))
    env.run()
    assert len(node.idle_periods) == 1
    assert node.idle_periods[0].kind is IdleKind.SELF_IO
    # Necessary wait approx the disk time.
    assert node.idle_periods[0].necessary == pytest.approx(30.0, abs=1.0)


def test_unready_hit_is_remote_io_idle():
    env, machine, file, cache, server, metrics = build_stack()

    def late_reader():
        yield env.timeout(10.0)
        yield env.process(user_read(server, machine.nodes[1], 3))

    env.process(user_read(server, machine.nodes[0], 3))
    env.process(late_reader())
    env.run()
    node1 = machine.nodes[1]
    assert len(node1.idle_periods) == 1
    assert node1.idle_periods[0].kind is IdleKind.REMOTE_IO
    # Waited out the remaining ~20 ms of the first reader's I/O.
    assert metrics.hit_wait.mean == pytest.approx(
        node1.idle_periods[0].necessary
    )
    assert metrics.hit_wait.mean < 25.0


def test_ready_hit_has_no_idle_period():
    env, machine, file, cache, server, metrics = build_stack()
    node = machine.nodes[0]
    env.process(user_read_many(server, node, [3, 3]))
    env.run()
    # Only the miss produced an idle period.
    assert len(node.idle_periods) == 1
    assert metrics.hits_ready == 1


def test_read_latency_recorded_per_node():
    env, machine, file, cache, server, metrics = build_stack()
    env.process(user_read(server, machine.nodes[0], 1))
    env.process(user_read(server, machine.nodes[1], 2))
    env.run()
    assert metrics.read_times.count == 2
    assert metrics.read_times_by_node[0].count == 1
    assert metrics.read_times_by_node[1].count == 1


def test_memory_system_balanced_after_reads():
    env, machine, file, cache, server, metrics = build_stack()
    env.process(user_read_many(server, machine.nodes[0], [1, 2, 3]))
    env.run()
    assert machine.memory.active == 0


def test_miss_latency_includes_queueing():
    """Two nodes missing blocks on the same disk serialize."""
    env, machine, file, cache, server, metrics = build_stack(
        n_nodes=2, n_disks=2
    )
    # blocks 0 and 2 both live on disk 0 (round-robin over 2 disks).
    env.process(user_read(server, machine.nodes[0], 0))
    env.process(user_read(server, machine.nodes[1], 2))
    env.run()
    assert metrics.read_times.max >= 60.0
    assert machine.disks[0].blocks_served == 2
    assert machine.disks[1].blocks_served == 0
