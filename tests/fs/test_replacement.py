"""Tests for replacement policies."""

from repro.fs import BufferState, GlobalLRUPolicy, RUSetPolicy
from repro.machine import RequestKind

from ..helpers import build_stack


def _fill(buf, block, kind=RequestKind.DEMAND, node=0, use=True):
    buf.start_fetch(block, kind, node)
    buf.mark_ready()
    if use:
        buf.record_use()


def test_ru_set_prefers_own_demand_buffer():
    env, machine, file, cache, *_ = build_stack(n_nodes=3)
    policy = RUSetPolicy()
    # Fill node 1's buffer; node 1's victim is its own buffer even though
    # other nodes' buffers are EMPTY.
    own = cache.demand_rusets[1][0]
    _fill(own, 42)
    assert policy.demand_victim(cache, 1) is own


def test_ru_set_falls_back_globally_when_own_pinned():
    env, machine, file, cache, *_ = build_stack(n_nodes=2)
    own = cache.demand_rusets[0][0]
    _fill(own, 1)
    own.pin()
    victim = RUSetPolicy().demand_victim(cache, 0)
    assert victim is cache.demand_rusets[1][0]


def test_ru_set_returns_none_when_everything_pinned():
    env, machine, file, cache, *_ = build_stack(n_nodes=2)
    for ruset in cache.demand_rusets:
        for buf in ruset:
            buf.pin()
    assert RUSetPolicy().demand_victim(cache, 0) is None


def test_prefetch_victim_prefers_local_empty():
    env, machine, file, cache, *_ = build_stack(n_nodes=2, prefetch_buffers=2)
    policy = RUSetPolicy()
    victim = policy.prefetch_victim(cache, 1)
    assert victim in cache.prefetch_sets[1]
    assert victim.state is BufferState.EMPTY


def test_prefetch_victim_lru_among_consumed():
    env, machine, file, cache, *_ = build_stack(n_nodes=1, prefetch_buffers=2)
    a, b = cache.prefetch_sets[0]

    def proc():
        _fill(a, 1, RequestKind.PREFETCH)
        yield env.timeout(5.0)
        _fill(b, 2, RequestKind.PREFETCH)

    env.process(proc())
    env.run()
    # a is older.
    assert RUSetPolicy().prefetch_victim(cache, 0) is a


def test_prefetch_victim_skips_unused_prefetched():
    env, machine, file, cache, *_ = build_stack(n_nodes=1, prefetch_buffers=2)
    a, b = cache.prefetch_sets[0]
    _fill(a, 1, RequestKind.PREFETCH, use=False)  # unused: protected
    _fill(b, 2, RequestKind.PREFETCH, use=True)
    assert RUSetPolicy().prefetch_victim(cache, 0) is b


def test_prefetch_victim_steals_remote_when_local_busy():
    env, machine, file, cache, *_ = build_stack(n_nodes=2, prefetch_buffers=1)
    local = cache.prefetch_sets[0][0]
    remote = cache.prefetch_sets[1][0]
    _fill(local, 1, RequestKind.PREFETCH, use=False)  # protected
    _fill(remote, 2, RequestKind.PREFETCH, use=True)
    assert RUSetPolicy().prefetch_victim(cache, 0) is remote


def test_global_lru_ignores_locality():
    env, machine, file, cache, *_ = build_stack(n_nodes=2)
    a = cache.demand_rusets[0][0]
    b = cache.demand_rusets[1][0]

    def proc():
        _fill(b, 2)
        yield env.timeout(5.0)
        _fill(a, 1)

    env.process(proc())
    env.run()
    # b is globally least recent, so even node 0 evicts it.
    assert GlobalLRUPolicy().demand_victim(cache, 0) is b


def test_policy_names():
    assert RUSetPolicy.name == "ru-set"
    assert GlobalLRUPolicy.name == "global-lru"
