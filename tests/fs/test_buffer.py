"""Tests for Buffer state transitions and evictability."""

import pytest

from repro.fs import Buffer, BufferPool, BufferState
from repro.machine import RequestKind
from repro.sim import Environment


def make_buffer(pool=BufferPool.DEMAND):
    env = Environment()
    return env, Buffer(env, index=0, home_node=2, pool=pool)


def test_initial_state():
    env, buf = make_buffer()
    assert buf.state is BufferState.EMPTY
    assert buf.block is None
    assert buf.is_evictable
    assert buf.pins == 0


def test_start_fetch_transitions():
    env, buf = make_buffer()
    ev = buf.start_fetch(5, RequestKind.DEMAND, by_node=1)
    assert buf.state is BufferState.FETCHING
    assert buf.block == 5
    assert buf.fetched_by == 1
    assert not ev.triggered
    assert not buf.is_evictable  # fetching is never evictable


def test_double_fetch_rejected():
    env, buf = make_buffer()
    buf.start_fetch(5, RequestKind.DEMAND, 0)
    with pytest.raises(RuntimeError):
        buf.start_fetch(6, RequestKind.DEMAND, 0)


def test_fetch_pinned_rejected():
    env, buf = make_buffer()
    buf.pin()
    with pytest.raises(RuntimeError):
        buf.start_fetch(5, RequestKind.DEMAND, 0)


def test_mark_ready_wakes_waiters():
    env, buf = make_buffer()
    got = []

    def waiter(ev):
        value = yield ev
        got.append(value)

    ev = buf.start_fetch(5, RequestKind.DEMAND, 0)
    env.process(waiter(ev))
    buf.mark_ready()
    env.run()
    assert got == [buf]
    assert buf.state is BufferState.READY


def test_mark_ready_requires_fetching():
    env, buf = make_buffer()
    with pytest.raises(RuntimeError):
        buf.mark_ready()


def test_record_use_requires_ready():
    env, buf = make_buffer()
    buf.start_fetch(5, RequestKind.DEMAND, 0)
    with pytest.raises(RuntimeError):
        buf.record_use()
    buf.mark_ready()
    buf.record_use()
    assert buf.read_count == 1


def test_demand_ready_unread_is_evictable():
    env, buf = make_buffer()
    buf.start_fetch(5, RequestKind.DEMAND, 0)
    buf.mark_ready()
    assert buf.is_evictable


def test_prefetched_unused_is_protected():
    env, buf = make_buffer(BufferPool.PREFETCH)
    buf.start_fetch(5, RequestKind.PREFETCH, 0)
    buf.mark_ready()
    assert not buf.is_evictable  # prefetched-but-unused
    buf.record_use()
    assert buf.is_evictable  # consumed: reusable


def test_pinned_never_evictable():
    env, buf = make_buffer()
    buf.start_fetch(5, RequestKind.DEMAND, 0)
    buf.mark_ready()
    buf.record_use()
    buf.pin()
    assert not buf.is_evictable
    buf.unpin()
    assert buf.is_evictable


def test_unpin_without_pin_raises():
    env, buf = make_buffer()
    with pytest.raises(RuntimeError):
        buf.unpin()


def test_invalidate_clears_state():
    env, buf = make_buffer()
    buf.start_fetch(5, RequestKind.DEMAND, 0)
    buf.mark_ready()
    buf.record_use()
    buf.invalidate()
    assert buf.state is BufferState.EMPTY
    assert buf.block is None
    assert buf.read_count == 0
    assert buf.fetch_kind is None


def test_invalidate_fetching_rejected():
    env, buf = make_buffer()
    buf.start_fetch(5, RequestKind.DEMAND, 0)
    with pytest.raises(RuntimeError):
        buf.invalidate()


def test_invalidate_pinned_rejected():
    env, buf = make_buffer()
    buf.pin()
    with pytest.raises(RuntimeError):
        buf.invalidate()


def test_refetch_resets_read_count():
    env, buf = make_buffer()
    buf.start_fetch(5, RequestKind.DEMAND, 0)
    buf.mark_ready()
    buf.record_use()
    buf.invalidate()
    buf.start_fetch(9, RequestKind.PREFETCH, 3)
    assert buf.read_count == 0
    assert buf.fetch_kind is RequestKind.PREFETCH
