"""Tests for the write path: dirty buffers, flushing, and the daemon.

The model under test is docs/writes.md: whole-block overwrites dirty a
buffer with no read-modify-write, write-through flushes synchronously,
write-back relies on the background flusher, the dirty-ratio throttle,
and clean-before-reclaim eviction flushes.
"""

import pytest

from repro.fs import (
    WRITE_MODES,
    BufferState,
    WritebackConfig,
    WritebackDaemon,
)

from ..helpers import build_stack, user_read, user_write, user_write_many

DISK_MS = 30.0


def armed_stack(write_mode="write-back", dirty_ratio=0.5,
                dirty_background_ratio=0.25, **kwargs):
    env, machine, file, cache, server, metrics = build_stack(**kwargs)
    cache.configure_writeback(
        WritebackConfig(
            write_mode=write_mode,
            dirty_ratio=dirty_ratio,
            dirty_background_ratio=dirty_background_ratio,
        )
    )
    return env, machine, file, cache, server, metrics


# --------------------------------------------------------------- config


def test_config_rejects_unknown_mode():
    with pytest.raises(ValueError, match="write mode"):
        WritebackConfig(write_mode="journal")


def test_config_rejects_bad_ratios():
    with pytest.raises(ValueError):
        WritebackConfig(dirty_ratio=0.0)
    with pytest.raises(ValueError):
        WritebackConfig(dirty_ratio=1.5)
    with pytest.raises(ValueError):
        WritebackConfig(dirty_ratio=0.2, dirty_background_ratio=0.4)


def test_config_limits_in_blocks():
    config = WritebackConfig(dirty_ratio=0.5, dirty_background_ratio=0.25)
    assert config.dirty_limit_for(8) == 4
    assert config.background_limit_for(8) == 2
    # The foreground limit never rounds down to zero.
    assert config.dirty_limit_for(1) == 1
    assert "write-back" in WRITE_MODES and "write-through" in WRITE_MODES


# ----------------------------------------------------------- write-back


def test_write_back_buffers_dirty_without_disk_io():
    env, machine, file, cache, server, metrics = armed_stack()
    results = []
    env.process(user_write(server, machine.nodes[0], 3, results))
    env.run()
    assert cache.dirty_count == 1
    assert cache.table[3].state is BufferState.DIRTY
    assert metrics.write_misses == 1
    assert metrics.dirty_peak == 1
    # Buffered write: no disk access on the application's path.
    assert metrics.write_times.mean < DISK_MS
    assert machine.disks[0].blocks_served + machine.disks[1].blocks_served == 0


def test_rewrite_of_dirty_block_is_a_hit_and_not_recounted():
    env, machine, file, cache, server, metrics = armed_stack()
    env.process(user_write_many(server, machine.nodes[0], [3, 3]))
    env.run()
    assert cache.dirty_count == 1
    assert metrics.write_misses == 1
    assert metrics.write_hits == 1
    assert metrics.dirty_peak == 1


def test_write_hit_on_cached_block_dirties_it():
    env, machine, file, cache, server, metrics = armed_stack()

    def read_then_write():
        yield env.process(user_read(server, machine.nodes[0], 5))
        yield env.process(user_write(server, machine.nodes[0], 5))

    env.process(read_then_write())
    env.run()
    assert cache.table[5].state is BufferState.DIRTY
    assert metrics.write_hits == 1
    assert cache.dirty_count == 1


def test_write_to_unready_buffer_waits_for_the_fetch():
    """A write landing on a block mid-fetch waits the read I/O out, then
    overwrites — the buffer ends dirty, not clean."""
    env, machine, file, cache, server, metrics = armed_stack()

    def late_writer():
        yield env.timeout(10.0)
        yield env.process(user_write(server, machine.nodes[1], 3))

    env.process(user_read(server, machine.nodes[0], 3))
    env.process(late_writer())
    env.run()
    assert cache.table[3].state is BufferState.DIRTY
    assert metrics.write_hits == 1
    # The writer waited out the remaining ~20 ms of the fetch.
    assert metrics.write_times.mean > 15.0


# --------------------------------------------------------- write-through


def test_write_through_flushes_synchronously():
    env, machine, file, cache, server, metrics = armed_stack(
        write_mode="write-through"
    )
    env.process(user_write(server, machine.nodes[0], 3))
    env.run()
    assert cache.dirty_count == 0
    assert cache.table[3].state is BufferState.READY
    assert metrics.flushes_by_reason == {"write-through": 1}
    assert metrics.flushes_completed == 1
    # Durable-side latency includes the disk write.
    assert metrics.write_times.mean >= DISK_MS


# ------------------------------------------------------------- throttle


def test_dirty_ratio_throttle_bounds_dirty_growth():
    env, machine, file, cache, server, metrics = armed_stack(
        dirty_ratio=0.25, dirty_background_ratio=0.0
    )
    # 8 buffers -> throttle at 2 dirty; five distinct-block writes must
    # stall and flush rather than dirty the whole cache.
    env.process(user_write_many(server, machine.nodes[0], [0, 1, 2, 3, 4]))
    env.run()
    assert metrics.throttle_stalls.count > 0
    assert metrics.flushes_by_reason.get("throttle", 0) > 0
    assert metrics.dirty_peak <= cache.dirty_limit
    # Each stall paid (at least) a disk write.
    assert metrics.throttle_stalls.mean >= DISK_MS


def test_no_throttle_below_the_limit():
    # A demand pool wide enough that no eviction flush interferes.
    env, machine, file, cache, server, metrics = armed_stack(
        demand_buffers=4
    )
    env.process(user_write_many(server, machine.nodes[0], [0, 1, 2]))
    env.run()
    assert metrics.throttle_stalls.count == 0
    assert metrics.flushes_by_reason == {}
    assert cache.dirty_count == 3


# ------------------------------------------------- eviction-forced flush


def test_reclaim_flushes_dirty_blocks_rather_than_deadlocking():
    """A cache full of dirty data must clean-before-reclaim: the read
    that needs a buffer forces the oldest dirty block out synchronously
    (and completes) instead of waiting forever."""
    env, machine, file, cache, server, metrics = armed_stack(
        dirty_ratio=1.0, dirty_background_ratio=1.0
    )
    results = []

    def write_fill_then_read():
        # Dirty every buffer this node can reach, then demand a miss.
        yield env.process(
            user_write_many(server, machine.nodes[0], list(range(8)))
        )
        yield env.process(user_read(server, machine.nodes[0], 90, results))

    env.process(write_fill_then_read())
    env.run()
    assert results, "the read never completed: reclaim deadlocked"
    assert metrics.flushes_by_reason.get("eviction", 0) >= 1
    cache.check_invariants()


# ----------------------------------------------------------- the daemon


def test_daemon_flushes_during_idle_time():
    env, machine, file, cache, server, metrics = armed_stack(
        dirty_background_ratio=0.0
    )
    node = machine.nodes[0]
    daemon = WritebackDaemon(node, cache, metrics, cache.writeback)

    def write_then_idle():
        # Three dirty blocks, then a miss: the ~30 ms SELF_IO idle
        # period is the flusher's window.
        yield env.process(user_write_many(server, node, [0, 1, 2]))
        yield env.process(user_read(server, node, 50))

    env.process(write_then_idle())
    env.run()
    assert daemon.outcomes.get("success", 0) >= 1
    assert metrics.flushes_by_reason.get("background", 0) >= 1
    assert metrics.flushes_completed >= 1
    assert cache.dirty_count < 3
    assert node.flusher is daemon


def test_daemon_sits_out_below_background_threshold():
    env, machine, file, cache, server, metrics = armed_stack(
        dirty_ratio=0.75, dirty_background_ratio=0.5
    )
    node = machine.nodes[0]
    daemon = WritebackDaemon(node, cache, metrics, cache.writeback)

    def write_then_idle():
        yield env.process(user_write(server, node, 0))  # 1 < limit of 4
        yield env.process(user_read(server, node, 50))

    env.process(write_then_idle())
    env.run()
    assert daemon.outcomes.get("success", 0) == 0
    assert daemon.outcomes.get("clean", 0) >= 1
    assert cache.dirty_count == 1


def test_daemon_action_observer_is_fired():
    env, machine, file, cache, server, metrics = armed_stack(
        dirty_background_ratio=0.0
    )
    node = machine.nodes[0]
    daemon = WritebackDaemon(node, cache, metrics, cache.writeback)
    seen = []
    daemon.action_observer = lambda nid, s, e, out: seen.append(
        (nid, s, e, out)
    )

    def write_then_idle():
        yield env.process(user_write(server, node, 0))
        yield env.process(user_read(server, node, 50))

    env.process(write_then_idle())
    env.run()
    assert seen
    assert all(nid == 0 and e >= s for nid, s, e, _ in seen)
    assert any(out == "success" for _, _, _, out in seen)


# ------------------------------------------------------ pressure signal


def test_write_pressure_observer_sees_dirty_crossings():
    env, machine, file, cache, server, metrics = armed_stack(
        dirty_ratio=1.0, dirty_background_ratio=0.1, demand_buffers=6
    )
    seen = []
    cache.write_pressure_observer = lambda nid, dirty, limit: seen.append(
        (nid, dirty, limit)
    )
    env.process(user_write_many(server, machine.nodes[0], [0, 1, 2, 3]))
    env.run()
    assert len(seen) == 4
    assert [dirty for _, dirty, _ in seen] == [1, 2, 3, 4]
    assert all(limit == cache.dirty_background_limit for _, _, limit in seen)
    # The crossing the adaptive policy latches on: above background.
    assert any(dirty > limit for _, dirty, limit in seen)


# ----------------------------------------------------------- invariants


def test_invariants_hold_after_mixed_traffic():
    env, machine, file, cache, server, metrics = armed_stack(
        dirty_ratio=0.5, dirty_background_ratio=0.0
    )
    node0, node1 = machine.nodes[0], machine.nodes[1]
    WritebackDaemon(node0, cache, metrics, cache.writeback)
    WritebackDaemon(node1, cache, metrics, cache.writeback)

    def traffic(node, blocks):
        for block in blocks:
            if block % 3 == 0:
                yield env.process(user_write(server, node, block))
            else:
                yield env.process(user_read(server, node, block))

    env.process(traffic(node0, list(range(0, 12))))
    env.process(traffic(node1, list(range(6, 18))))
    env.run()
    cache.check_invariants()
    assert machine.memory.active == 0
    assert metrics.write_misses + metrics.write_hits > 0
