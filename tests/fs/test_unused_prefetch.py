"""Tests for the unused-prefetch accounting (counter + passive observer)."""

from repro.fs.buffer import BufferState, RequestKind
from repro.prefetch import OraclePolicy
from repro.sim.rng import RandomStreams
from repro.workload.patterns import make_pattern
from repro.workload.progress import ProgressTracker

from ..helpers import build_stack, user_read


def _oracle_for(cache, n_nodes=2, file_blocks=100):
    pattern = make_pattern(
        "gw",
        n_nodes=n_nodes,
        file_blocks=file_blocks,
        total_reads=file_blocks,
        rng=RandomStreams(1),
    )
    tracker = ProgressTracker(pattern, n_nodes)
    policy = OraclePolicy(pattern, tracker)
    policy.bind(cache)
    return policy


def _prefetch_one(env, machine, cache, policy):
    def daemon_once():
        cpu = yield from machine.nodes[0].acquire_cpu()
        yield from cache.prefetch_action(0, policy)
        machine.nodes[0].release_cpu(cpu)

    env.process(daemon_once())
    env.run()


def test_eviction_counts_unused_prefetch():
    env, machine, file, cache, server, metrics = build_stack()
    policy = _oracle_for(cache)
    events = []
    cache.unused_prefetch_observer = lambda node, block, reason: (
        events.append((node, block, reason))
    )
    _prefetch_one(env, machine, cache, policy)
    buf = cache.buffer_for(0)
    assert buf is not None and buf.read_count == 0

    cache._evict(buf)
    assert metrics.prefetch_unused_evictions == 1
    assert metrics.prefetch_write_offs == 0
    assert events == [(0, 0, "evicted")]


def test_fetch_failed_mid_flight_prefetch_is_written_off():
    # Regression: a prefetch killed by a fail-stopped disk must be
    # booked as a write-off (reason "fetch_failed"), not as an ordinary
    # unused eviction — and must not linger as a phantom commitment.
    env, machine, file, cache, server, metrics = build_stack()
    events = []
    cache.unused_prefetch_observer = lambda node, block, reason: (
        events.append((node, block, reason))
    )

    def scenario():
        buf = cache.prefetch_sets[0][0]
        buf.start_fetch(7, RequestKind.PREFETCH, 0)
        cache.table[7] = buf
        cache.unused_prefetched += 1
        cache._budget_holders.add(buf.index)
        assert buf.state is BufferState.FETCHING
        cache.fetch_failed(buf, RuntimeError("disk died"))
        yield env.timeout(0)

    env.process(scenario())
    env.run()
    assert metrics.prefetch_write_offs == 1
    assert metrics.prefetch_unused_evictions == 0
    assert events == [(0, 7, "fetch_failed")]
    assert cache.unused_prefetched == 0  # budget returned


def test_consumed_prefetch_is_not_counted():
    env, machine, file, cache, server, metrics = build_stack()
    policy = _oracle_for(cache)

    def scenario():
        cpu = yield from machine.nodes[0].acquire_cpu()
        yield from cache.prefetch_action(0, policy)
        machine.nodes[0].release_cpu(cpu)
        yield env.timeout(60.0)  # let the I/O complete
        yield env.process(user_read(server, machine.nodes[1], 0))

    env.process(scenario())
    env.run()
    buf = cache.buffer_for(0)
    assert buf is not None and buf.read_count > 0
    cache._evict(buf)
    assert metrics.prefetch_unused_evictions == 0


def test_demand_fetch_failure_is_not_counted():
    env, machine, file, cache, server, metrics = build_stack()

    def scenario():
        buf = cache.demand_rusets[0][0]
        buf.start_fetch(7, RequestKind.DEMAND, 0)
        cache.table[7] = buf
        cache.fetch_failed(buf, RuntimeError("disk died"))
        yield env.timeout(0)

    env.process(scenario())
    env.run()
    assert metrics.prefetch_unused_evictions == 0


def test_observer_is_optional():
    env, machine, file, cache, server, metrics = build_stack()
    policy = _oracle_for(cache)
    assert cache.unused_prefetch_observer is None
    _prefetch_one(env, machine, cache, policy)
    cache._evict(cache.buffer_for(0))  # no observer: counter only
    assert metrics.prefetch_unused_evictions == 1
