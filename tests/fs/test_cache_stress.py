"""Stress tests for the cache's rare paths: allocation waits when every
demand buffer is pinned, and table re-checks after waiting."""

import pytest

from repro.fs import BufferState
from repro.sim import RandomStreams

from ..helpers import build_stack, user_read


def test_demand_allocation_waits_when_all_buffers_pinned():
    """Three concurrent misses with only two demand buffers: the third
    must wait for a buffer release, then complete."""
    env, machine, file, cache, server, metrics = build_stack(
        n_nodes=2, n_disks=2, file_blocks=100
    )
    results = []

    # Two real misses pin both demand buffers during their fetches.
    env.process(user_read(server, machine.nodes[0], 1, results))
    env.process(user_read(server, machine.nodes[1], 2, results))

    # A third reader (cohabiting node 0) arrives while both buffers are
    # pinned and must wait on the freed signal.
    def third():
        yield env.timeout(5.0)
        yield env.process(user_read(server, machine.nodes[0], 3, results))

    env.process(third())
    env.run()
    assert len(results) == 3
    assert metrics.misses == 3
    # The third read's allocation stalled for a measurable time.
    assert cache.alloc_waits.max > 1.0
    cache.check_invariants()


def test_waiter_recheck_finds_block_fetched_by_other():
    """While waiting for a free buffer, the wanted block is fetched by
    another node: the waiter must convert to a hit, not double-fetch."""
    env, machine, file, cache, server, metrics = build_stack(
        n_nodes=2, n_disks=2, file_blocks=100
    )
    results = []

    # Node 0 misses block 1; node 1 misses block 2: both buffers pinned.
    env.process(user_read(server, machine.nodes[0], 1, results))
    env.process(user_read(server, machine.nodes[1], 2, results))

    # Late reader on node 0 wants block 2 — already FETCHING: unready hit,
    # no allocation involved.
    def late_same_block():
        yield env.timeout(5.0)
        yield env.process(user_read(server, machine.nodes[0], 2, results))

    env.process(late_same_block())
    env.run()
    assert metrics.misses == 2  # block 2 fetched exactly once
    assert metrics.hits_unready == 1
    assert machine.disks[0].blocks_served + machine.disks[1].blocks_served == 2
    cache.check_invariants()


def test_randomized_read_storm_conserves_counts():
    """A randomized storm of reads (one in-flight read per node, the
    paper's model) terminates with conserved counts."""
    env, machine, file, cache, server, metrics = build_stack(
        n_nodes=4, n_disks=4, file_blocks=50
    )
    rng = RandomStreams(11)
    reads_per_node = 15
    done = []

    def node_driver(node):
        for j in range(reads_per_node):
            yield env.timeout(
                rng.uniform(f"gap/{node.node_id}/{j}", 0.0, 5.0)
            )
            block = rng.uniform_int(f"block/{node.node_id}/{j}", 0, 49)
            yield env.process(user_read(server, node, block, done))

    for node in machine.nodes:
        env.process(node_driver(node))
    env.run()
    n_reads = 4 * reads_per_node
    assert len(done) == n_reads
    assert metrics.total_accesses == n_reads
    assert metrics.hits_ready + metrics.hits_unready + metrics.misses == n_reads
    cache.check_invariants()


def test_prefetch_storm_respects_budget():
    """Hammer prefetch actions from every node; the unused budget is never
    exceeded (checked continuously via invariants)."""
    from repro.prefetch import OraclePolicy
    from repro.workload import ProgressTracker, make_pattern

    env, machine, file, cache, server, metrics = build_stack(
        n_nodes=4, n_disks=4, file_blocks=200, prefetch_buffers=2,
        unused_limit=5,
    )
    pattern = make_pattern("gw", n_nodes=4, file_blocks=200, total_reads=200)
    tracker = ProgressTracker(pattern, 4)
    policy = OraclePolicy(pattern, tracker)
    policy.bind(cache)
    peak = []

    def hammer(node):
        cpu = yield from node.acquire_cpu()
        for _ in range(10):
            yield from cache.prefetch_action(node.node_id, policy)
            peak.append(cache.unused_prefetched)
        node.release_cpu(cpu)

    for node in machine.nodes:
        env.process(hammer(node))
    env.run()
    assert max(peak) <= 5
    cache.check_invariants()
