"""Tests for file layouts."""

import pytest

from repro.fs import HashedLayout, RoundRobinLayout, StripedLayout


def test_layout_validation():
    with pytest.raises(ValueError):
        RoundRobinLayout(0)
    with pytest.raises(ValueError):
        StripedLayout(4, stripe_width=0)


def test_round_robin_mapping():
    layout = RoundRobinLayout(4)
    assert [layout.disk_index(b) for b in range(8)] == [0, 1, 2, 3, 0, 1, 2, 3]


def test_round_robin_negative_block_rejected():
    with pytest.raises(ValueError):
        RoundRobinLayout(4).disk_index(-1)


def test_striped_mapping():
    layout = StripedLayout(2, stripe_width=3)
    assert [layout.disk_index(b) for b in range(12)] == [
        0, 0, 0, 1, 1, 1, 0, 0, 0, 1, 1, 1,
    ]


def test_striped_width_one_is_round_robin():
    striped = StripedLayout(5, stripe_width=1)
    rr = RoundRobinLayout(5)
    for b in range(50):
        assert striped.disk_index(b) == rr.disk_index(b)


def test_hashed_layout_deterministic_and_in_range():
    layout = HashedLayout(7, seed=3)
    first = [layout.disk_index(b) for b in range(100)]
    second = [HashedLayout(7, seed=3).disk_index(b) for b in range(100)]
    assert first == second
    assert all(0 <= d < 7 for d in first)


def test_hashed_layout_spreads_blocks():
    layout = HashedLayout(10)
    counts = [0] * 10
    for b in range(1000):
        counts[layout.disk_index(b)] += 1
    # Roughly uniform: no disk has more than double its fair share.
    assert max(counts) < 200


def test_hashed_layout_seed_changes_mapping():
    a = [HashedLayout(10, seed=0).disk_index(b) for b in range(100)]
    b = [HashedLayout(10, seed=1).disk_index(b) for b in range(100)]
    assert a != b
