"""Tests for File metadata."""

import pytest

from repro.fs import File, RoundRobinLayout


def test_file_validation():
    with pytest.raises(ValueError):
        File("f", 0, RoundRobinLayout(4))
    with pytest.raises(ValueError):
        File("f", 10, RoundRobinLayout(4), block_size=0)


def test_interleaved_factory_matches_paper():
    f = File.interleaved("data", 2000, 20)
    assert f.n_blocks == 2000
    assert f.block_size == 1024
    assert f.size_bytes == 2000 * 1024
    assert f.disk_for(0) == 0
    assert f.disk_for(19) == 19
    assert f.disk_for(20) == 0


def test_disk_for_out_of_range():
    f = File.interleaved("data", 100, 4)
    with pytest.raises(ValueError):
        f.disk_for(100)
    with pytest.raises(ValueError):
        f.disk_for(-1)
