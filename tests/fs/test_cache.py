"""Tests for the block cache: demand path, hit types, budget, eviction."""

import pytest

from repro.fs import BufferState, CacheConfig
from repro.fs.cache import BlockCache
from repro.prefetch import NullPolicy, OraclePolicy
from repro.sim import RandomStreams
from repro.workload import ProgressTracker, make_pattern

from ..helpers import build_stack, user_read, user_read_many


# ------------------------------------------------------------- CacheConfig


def test_cache_config_validation():
    with pytest.raises(ValueError):
        CacheConfig(demand_buffers_per_node=0)
    with pytest.raises(ValueError):
        CacheConfig(prefetch_buffers_per_node=-1)
    with pytest.raises(ValueError):
        CacheConfig(prefetch_unused_limit=-1)
    with pytest.raises(ValueError):
        CacheConfig(replacement="mru")


def test_cache_config_default_unused_limit():
    cfg = CacheConfig(prefetch_buffers_per_node=3)
    assert cfg.unused_limit_for(20) == 60
    assert CacheConfig(prefetch_unused_limit=7).unused_limit_for(20) == 7


def test_cache_buffer_counts_match_paper():
    env, machine, file, cache, server, metrics = build_stack(
        n_nodes=20, n_disks=20, file_blocks=2000
    )
    # 20 demand + 60 prefetch = 80 buffers, the paper's cache size.
    assert cache.n_buffers == 80
    assert cache.unused_limit == 60


# ------------------------------------------------------------ demand path


def test_cold_miss_takes_disk_time():
    env, machine, file, cache, server, metrics = build_stack()
    results = []
    env.process(user_read(server, machine.nodes[0], 5, results))
    env.run()
    assert metrics.misses == 1
    assert metrics.hits_ready == 0
    # Read took at least the disk access time.
    assert metrics.read_times.mean >= 30.0
    assert cache.buffer_for(5) is not None
    assert cache.buffer_for(5).state is BufferState.READY


def test_reread_same_block_is_ready_hit():
    env, machine, file, cache, server, metrics = build_stack()
    node = machine.nodes[0]
    env.process(user_read_many(server, node, [5, 5]))
    env.run()
    assert metrics.misses == 1
    assert metrics.hits_ready == 1
    # Hit time is tiny compared to the miss.
    assert metrics.read_times.min < 5.0


def test_concurrent_same_block_gives_unready_hit():
    env, machine, file, cache, server, metrics = build_stack()

    def second_reader():
        yield env.timeout(5.0)  # after the first has started fetching
        yield env.process(user_read(server, machine.nodes[1], 7))

    env.process(user_read(server, machine.nodes[0], 7))
    env.process(second_reader())
    env.run()
    assert metrics.misses == 1
    assert metrics.hits_unready == 1
    assert metrics.hit_wait.count == 1
    # The second reader waited out the remaining I/O: < 30 ms.
    assert 0 < metrics.hit_wait.mean < 30.0


def test_toss_immediately_demand_replacement():
    """With RU-set size 1, a node's next miss evicts its own previous block."""
    env, machine, file, cache, server, metrics = build_stack()
    node = machine.nodes[0]
    env.process(user_read_many(server, node, [1, 2]))
    env.run()
    assert cache.buffer_for(2) is not None
    assert cache.buffer_for(1) is None  # tossed
    assert metrics.misses == 2


def test_nodes_have_independent_demand_buffers():
    env, machine, file, cache, server, metrics = build_stack()
    env.process(user_read(server, machine.nodes[0], 1))
    env.process(user_read(server, machine.nodes[1], 2))
    env.run()
    assert cache.buffer_for(1) is not None
    assert cache.buffer_for(2) is not None


def test_check_invariants_after_traffic():
    env, machine, file, cache, server, metrics = build_stack()
    for node, blocks in ((0, [1, 3, 5]), (1, [2, 3, 6])):
        env.process(user_read_many(server, machine.nodes[node], blocks))
    env.run()
    cache.check_invariants()
    assert metrics.total_accesses == 6


def test_access_observer_called_per_demand_access():
    env, machine, file, cache, server, metrics = build_stack()
    seen = []
    cache.access_observer = lambda node, block: seen.append((node, block))
    env.process(user_read_many(server, machine.nodes[0], [4, 4, 9]))
    env.run()
    assert seen == [(0, 4), (0, 4), (0, 9)]


# --------------------------------------------------------- prefetch path


def _oracle_for(cache, pattern_name="gw", n_nodes=2, file_blocks=100,
                total_reads=None):
    pattern = make_pattern(
        pattern_name,
        n_nodes=n_nodes,
        file_blocks=file_blocks,
        total_reads=total_reads or file_blocks,
        rng=RandomStreams(1),
    )
    tracker = ProgressTracker(pattern, n_nodes)
    policy = OraclePolicy(pattern, tracker)
    policy.bind(cache)
    return pattern, tracker, policy


def test_prefetch_action_success_fills_buffer():
    env, machine, file, cache, server, metrics = build_stack()
    pattern, tracker, policy = _oracle_for(cache)
    outcomes = []

    def daemon_once():
        cpu = yield from machine.nodes[0].acquire_cpu()
        outcome = yield from cache.prefetch_action(0, policy)
        machine.nodes[0].release_cpu(cpu)
        outcomes.append(outcome)

    env.process(daemon_once())
    env.run()
    assert outcomes == ["success"]
    assert metrics.blocks_prefetched == 1
    assert cache.unused_prefetched == 1
    buf = cache.buffer_for(0)  # gw oracle prefetches block 0 first
    assert buf is not None
    assert buf.state is BufferState.READY


def test_prefetched_block_hit_releases_budget():
    env, machine, file, cache, server, metrics = build_stack()
    pattern, tracker, policy = _oracle_for(cache)

    def scenario():
        cpu = yield from machine.nodes[0].acquire_cpu()
        yield from cache.prefetch_action(0, policy)
        machine.nodes[0].release_cpu(cpu)
        yield env.timeout(60.0)  # let the I/O complete
        assert cache.unused_prefetched == 1
        yield env.process(user_read(server, machine.nodes[1], 0))
        assert cache.unused_prefetched == 0

    env.process(scenario())
    env.run()
    assert metrics.hits_ready == 1
    cache.check_invariants()


def test_budget_full_blocks_prefetch():
    env, machine, file, cache, server, metrics = build_stack(
        unused_limit=2, prefetch_buffers=3
    )
    pattern, tracker, policy = _oracle_for(cache)
    outcomes = []

    def daemon():
        cpu = yield from machine.nodes[0].acquire_cpu()
        for _ in range(3):
            outcome = yield from cache.prefetch_action(0, policy)
            outcomes.append(outcome)
        machine.nodes[0].release_cpu(cpu)

    env.process(daemon())
    env.run()
    assert outcomes == ["success", "success", "budget_full"]
    assert cache.unused_prefetched == 2


def test_no_buffer_when_all_prefetch_buffers_busy():
    env, machine, file, cache, server, metrics = build_stack(
        prefetch_buffers=1, unused_limit=10
    )
    pattern, tracker, policy = _oracle_for(cache)
    outcomes = []

    def daemon():
        cpu = yield from machine.nodes[0].acquire_cpu()
        for _ in range(3):
            outcome = yield from cache.prefetch_action(0, policy)
            outcomes.append(outcome)
        machine.nodes[0].release_cpu(cpu)

    env.process(daemon())
    env.run()
    # 2 buffers machine-wide (1/node); the third attempt finds none
    # evictable (both hold prefetched-unused blocks).
    assert outcomes == ["success", "success", "no_buffer"]


def test_consumed_prefetch_buffer_is_reused():
    env, machine, file, cache, server, metrics = build_stack(
        prefetch_buffers=1, unused_limit=10
    )
    pattern, tracker, policy = _oracle_for(cache)

    def scenario():
        cpu = yield from machine.nodes[0].acquire_cpu()
        for _ in range(2):
            yield from cache.prefetch_action(0, policy)
        machine.nodes[0].release_cpu(cpu)
        yield env.timeout(100.0)
        # Consume block 0; its buffer becomes evictable.
        yield env.process(user_read(server, machine.nodes[1], 0))
        cpu = yield from machine.nodes[0].acquire_cpu()
        outcome = yield from cache.prefetch_action(0, policy)
        machine.nodes[0].release_cpu(cpu)
        assert outcome == "success"

    env.process(scenario())
    env.run()
    assert metrics.blocks_prefetched == 3
    cache.check_invariants()


def test_prefetch_no_candidate_with_null_view():
    """Oracle exhausted when the whole string is claimed."""
    env, machine, file, cache, server, metrics = build_stack(file_blocks=2)
    pattern, tracker, policy = _oracle_for(cache, file_blocks=2)
    outcomes = []

    def daemon():
        cpu = yield from machine.nodes[0].acquire_cpu()
        for _ in range(3):
            outcome = yield from cache.prefetch_action(0, policy)
            outcomes.append(outcome)
        machine.nodes[0].release_cpu(cpu)

    env.process(daemon())
    env.run()
    assert outcomes == ["success", "success", "no_candidate"]
    assert policy.exhausted(0)


def test_global_lru_replacement_option():
    env, machine, file, cache, server, metrics = build_stack(
        replacement="global-lru"
    )
    node = machine.nodes[0]
    env.process(user_read_many(server, node, [1, 2, 3]))
    env.run()
    # With 2 demand buffers total (1/node) and global LRU, node 0's reads
    # cycle through both buffers.
    assert metrics.misses == 3
    cache.check_invariants()
