"""Tests for access-trace recording and persistence."""

import json

import pytest

from repro.fs import Trace, TraceRecord
from repro.fs.trace import ACCESS_TRACE_VERSION, TraceFormatError

from ..helpers import build_stack, user_read_many


def test_record_roundtrip_json():
    r = TraceRecord(time=1.5, node=3, block=42, outcome="miss", latency=30.2,
                    ref_index=7)
    assert TraceRecord.from_json(r.to_json()) == r


def test_trace_validates_outcome():
    trace = Trace()
    with pytest.raises(ValueError):
        trace.append(
            TraceRecord(time=0, node=0, block=0, outcome="banana", latency=0)
        )


def test_trace_container_basics():
    records = [
        TraceRecord(time=float(i), node=i % 2, block=i, outcome="miss",
                    latency=30.0)
        for i in range(4)
    ]
    trace = Trace(records)
    assert len(trace) == 4
    assert trace[2].block == 2
    assert trace.blocks() == [0, 1, 2, 3]
    assert len(trace.by_node(0)) == 2
    assert trace.outcome_counts() == {"ready": 0, "unready": 0, "miss": 4}


def test_trace_time_sorted():
    records = [
        TraceRecord(time=5.0, node=0, block=1, outcome="miss", latency=1.0),
        TraceRecord(time=1.0, node=1, block=2, outcome="ready", latency=1.0),
    ]
    out = Trace(records).time_sorted()
    assert [r.block for r in out] == [2, 1]


def test_trace_save_load(tmp_path):
    records = [
        TraceRecord(time=1.0, node=0, block=9, outcome="unready",
                    latency=12.5, ref_index=3),
        TraceRecord(time=2.0, node=1, block=10, outcome="ready", latency=0.9),
    ]
    path = tmp_path / "trace.jsonl"
    Trace(records).save(path)
    loaded = Trace.load(path)
    assert loaded.records == records


def test_save_stamps_version_header(tmp_path):
    path = tmp_path / "trace.jsonl"
    Trace([
        TraceRecord(time=0.0, node=0, block=1, outcome="miss", latency=1.0)
    ]).save(path)
    header = json.loads(path.read_text().splitlines()[0])
    assert header == {
        "format": "rapid-transit-trace",
        "kind": "access",
        "version": ACCESS_TRACE_VERSION,
    }


def test_load_accepts_headerless_legacy_file(tmp_path):
    record = TraceRecord(
        time=0.0, node=0, block=1, outcome="miss", latency=1.0
    )
    path = tmp_path / "legacy.jsonl"
    path.write_text(record.to_json() + "\n")
    assert Trace.load(path).records == [record]


def test_load_tolerates_blank_and_trailing_lines(tmp_path):
    record = TraceRecord(
        time=0.0, node=0, block=1, outcome="miss", latency=1.0
    )
    path = tmp_path / "trace.jsonl"
    path.write_text("\n" + record.to_json() + "\n\n   \n")
    assert Trace.load(path).records == [record]


def test_load_rejects_unknown_field_with_line_number(tmp_path):
    path = tmp_path / "trace.jsonl"
    path.write_text(
        '{"time":0,"node":0,"block":1,"outcome":"miss","latency":1,'
        '"sparkle":2}\n'
    )
    with pytest.raises(TraceFormatError) as err:
        Trace.load(path)
    assert "sparkle" in str(err.value)
    assert ":1:" in str(err.value)


def test_load_rejects_missing_field(tmp_path):
    path = tmp_path / "trace.jsonl"
    path.write_text('{"time":0,"node":0}\n')
    with pytest.raises(TraceFormatError, match="missing required"):
        Trace.load(path)


def test_load_rejects_invalid_json(tmp_path):
    path = tmp_path / "trace.jsonl"
    path.write_text('{"format":"rapid-transit-trace","kind":"access",'
                    '"version":1}\n{not json\n')
    with pytest.raises(TraceFormatError, match=":2:"):
        Trace.load(path)


def test_load_rejects_wrong_kind(tmp_path):
    path = tmp_path / "trace.jsonl"
    path.write_text(
        '{"format":"rapid-transit-trace","kind":"replay","version":1}\n'
    )
    with pytest.raises(TraceFormatError, match="expected 'access'"):
        Trace.load(path)


def test_load_rejects_future_version(tmp_path):
    path = tmp_path / "trace.jsonl"
    path.write_text(
        '{"format":"rapid-transit-trace","kind":"access","version":42}\n'
    )
    with pytest.raises(TraceFormatError, match="version"):
        Trace.load(path)


def test_from_json_rejects_non_object():
    with pytest.raises(TraceFormatError, match="JSON object"):
        TraceRecord.from_json("[1, 2]")


def test_cache_records_trace():
    env, machine, file, cache, server, metrics = build_stack()
    env.process(user_read_many(server, machine.nodes[0], [1, 1]))
    env.run()
    assert cache.trace is not None
    counts = cache.trace.outcome_counts()
    assert counts["miss"] == 1
    assert counts["ready"] == 1
    # Latencies recorded per access.
    assert cache.trace[0].latency > cache.trace[1].latency
