"""Shared test fixtures: small machine/cache stacks."""

from repro.fs import BlockCache, CacheConfig, File, FileServer
from repro.machine import CostModel, Machine, MachineConfig
from repro.metrics import RunMetrics
from repro.sim import Environment


def build_stack(
    n_nodes=2,
    n_disks=2,
    file_blocks=100,
    demand_buffers=1,
    prefetch_buffers=3,
    unused_limit=None,
    replacement="ru-set",
    costs=None,
    disk_access_time=30.0,
):
    """A small but complete machine + cache stack for unit tests.

    Returns ``(env, machine, file, cache, server, metrics)``.
    """
    env = Environment()
    costs = costs or CostModel(disk_access_time=disk_access_time)
    machine = Machine(
        env, MachineConfig(n_nodes=n_nodes, n_disks=n_disks, costs=costs)
    )
    file = File.interleaved("test", file_blocks, n_disks)
    metrics = RunMetrics(env, n_nodes)
    cache = BlockCache(
        env,
        machine,
        file,
        CacheConfig(
            demand_buffers_per_node=demand_buffers,
            prefetch_buffers_per_node=prefetch_buffers,
            prefetch_unused_limit=unused_limit,
            replacement=replacement,
        ),
        metrics,
    )
    server = FileServer(cache)
    return env, machine, file, cache, server, metrics


def user_read(server, node, block, results=None, ref_index=-1):
    """Generator: a minimal user process performing one read."""

    def proc():
        cpu = yield from node.acquire_cpu()
        cpu = yield from server.read_block(node, cpu, block, ref_index)
        node.release_cpu(cpu)
        if results is not None:
            results.append((node.node_id, block, node.env.now))

    return proc()


def user_read_many(server, node, blocks, results=None):
    """Generator: a user process reading ``blocks`` in order."""

    def proc():
        cpu = yield from node.acquire_cpu()
        for block in blocks:
            cpu = yield from server.read_block(node, cpu, block)
            if results is not None:
                results.append((node.node_id, block, node.env.now))
        node.release_cpu(cpu)

    return proc()


def user_write(server, node, block, results=None, ref_index=-1):
    """Generator: a minimal user process performing one write."""

    def proc():
        cpu = yield from node.acquire_cpu()
        cpu = yield from server.write_block(node, cpu, block, ref_index)
        node.release_cpu(cpu)
        if results is not None:
            results.append((node.node_id, block, node.env.now))

    return proc()


def user_write_many(server, node, blocks, results=None):
    """Generator: a user process writing ``blocks`` in order."""

    def proc():
        cpu = yield from node.acquire_cpu()
        for block in blocks:
            cpu = yield from server.write_block(node, cpu, block)
            if results is not None:
                results.append((node.node_id, block, node.env.now))
        node.release_cpu(cpu)

    return proc()
