"""Findings baseline: fail-only-on-new gating semantics."""

import json
from pathlib import Path

import pytest

from repro.analysis.baseline import Baseline
from repro.analysis.rules import Diagnostic

BASE = Path("/base")


def _diag(path="/base/repro/fs/mod.py", line=3, rule="rng", msg="bad"):
    return Diagnostic(
        path=Path(path), line=line, col=0, rule=rule, message=msg
    )


def test_round_trip_save_load(tmp_path):
    baseline = Baseline.from_findings(
        [_diag(), _diag(line=9), _diag(rule="wallclock", msg="clock")],
        BASE,
    )
    out = tmp_path / "baseline.json"
    baseline.save(out)
    loaded = Baseline.load(out)
    assert loaded.counts == baseline.counts
    # Same-fingerprint findings (identical text, different lines) fold
    # into one entry with a count.
    assert sorted(loaded.counts.values()) == [1, 2]


def test_entries_store_relative_paths(tmp_path):
    baseline = Baseline.from_findings([_diag()], BASE)
    (entry,) = baseline.entries.values()
    assert entry["path"] == "repro/fs/mod.py"


def test_delta_known_vs_new():
    known = _diag()
    baseline = Baseline.from_findings([known], BASE)
    fresh = _diag(msg="never seen")
    delta = baseline.delta([known, fresh], BASE)
    assert delta.known == [known]
    assert delta.new == [fresh]
    assert not delta.ok


def test_delta_is_count_aware():
    """One recorded copy covers one occurrence: a second identical
    finding is new."""
    baseline = Baseline.from_findings([_diag()], BASE)
    delta = baseline.delta([_diag(line=3), _diag(line=40)], BASE)
    assert len(delta.known) == 1
    assert len(delta.new) == 1


def test_delta_reports_stale_entries():
    baseline = Baseline.from_findings([_diag(), _diag(msg="gone")], BASE)
    delta = baseline.delta([_diag()], BASE)
    assert delta.ok
    assert len(delta.stale) == 1


def test_empty_baseline_everything_new():
    delta = Baseline().delta([_diag()], BASE)
    assert not delta.ok and len(delta.new) == 1


def test_clean_scan_against_empty_baseline_passes():
    delta = Baseline().delta([], BASE)
    assert delta.ok and delta.stale == []


def test_load_rejects_wrong_schema(tmp_path):
    out = tmp_path / "nope.json"
    out.write_text(json.dumps({"schema": "other", "findings": {}}))
    with pytest.raises(ValueError):
        Baseline.load(out)


def test_saved_file_is_stable_and_sorted(tmp_path):
    findings = [_diag(), _diag(rule="wallclock", msg="clock")]
    a, b = tmp_path / "a.json", tmp_path / "b.json"
    Baseline.from_findings(findings, BASE).save(a)
    Baseline.from_findings(list(reversed(findings)), BASE).save(b)
    assert a.read_text() == b.read_text()
