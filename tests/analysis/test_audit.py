"""Runtime auditor: event-trace hashing, the same-instant race detector,
invariant promotion, and the twice-run determinism proof."""

import pytest

from repro.analysis import InvariantViolation, invariant, run_twice_and_diff
from repro.analysis.audit import Auditor, run_with_audit
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import run_experiment
from repro.sim.monitor import EventTraceHash, SimultaneousEventLog


def small_config(**overrides):
    base = dict(
        n_nodes=4,
        n_disks=4,
        file_blocks=80,
        total_reads=80,
        pattern="gw",
        seed=1,
    )
    base.update(overrides)
    return ExperimentConfig(**base)


# --------------------------------------------------------- EventTraceHash


class _Ev:
    pass


class _OtherEv:
    pass


def test_trace_hash_identical_streams_match():
    a, b = EventTraceHash(), EventTraceHash()
    for h in (a, b):
        h(0.0, 0, 1, _Ev())
        h(1.5, -1, 2, _Ev())
    assert a.hexdigest() == b.hexdigest()
    assert a.n_events == b.n_events == 2


@pytest.mark.parametrize(
    "key",
    [(0.0, 0, 2), (0.5, 0, 1), (0.0, -1, 1)],
    ids=["sequence", "time", "priority"],
)
def test_trace_hash_sensitive_to_ordering_key(key):
    a, b = EventTraceHash(), EventTraceHash()
    a(0.0, 0, 1, _Ev())
    b(*key, _Ev())
    assert a.hexdigest() != b.hexdigest()


def test_trace_hash_sensitive_to_event_type():
    a, b = EventTraceHash(), EventTraceHash()
    a(0.0, 0, 1, _Ev())
    b(0.0, 0, 1, _OtherEv())
    assert a.hexdigest() != b.hexdigest()


# --------------------------------------------------- SimultaneousEventLog


class _Queue:
    pass


class _Request:
    def __init__(self, resource):
        self.resource = resource


def test_race_detector_flags_same_instant_same_resource():
    log = SimultaneousEventLog()
    queue = _Queue()
    log(5.0, 0, 1, _Request(queue))
    log(5.0, 0, 2, _Request(queue))
    log.finish()
    assert log.n_collisions == 1
    (collision,) = log.collisions
    assert collision.time == 5.0
    assert collision.resource == "_Queue"
    assert collision.n_events == 2


def test_race_detector_ignores_distinct_resources_and_instants():
    log = SimultaneousEventLog()
    log(5.0, 0, 1, _Request(_Queue()))
    log(5.0, 0, 2, _Request(_Queue()))  # same instant, different queues
    log(6.0, 0, 3, _Request(_Queue()))  # later instant
    log(6.0, 0, 4, _Ev())  # no .resource at all
    log.finish()
    assert log.n_collisions == 0


def test_race_detector_priority_separates_buckets():
    log = SimultaneousEventLog()
    queue = _Queue()
    log(5.0, 0, 1, _Request(queue))
    log(5.0, 1, 2, _Request(queue))
    log.finish()
    assert log.n_collisions == 0


def test_race_detector_caps_retained_collisions():
    log = SimultaneousEventLog(keep=2)
    for i in range(4):
        queue = _Queue()
        log(float(i), 0, 2 * i, _Request(queue))
        log(float(i), 0, 2 * i + 1, _Request(queue))
    log.finish()
    assert log.n_collisions == 4
    assert len(log.collisions) == 2


# ------------------------------------------------------------- invariants


def test_invariant_helper_passes_and_fails():
    invariant(True, "never raised")
    with pytest.raises(InvariantViolation, match="broke \\[1, 'two'\\]"):
        invariant(False, "broke", 1, "two")


def test_invariant_violation_is_an_assertion_error():
    assert issubclass(InvariantViolation, AssertionError)


def test_corrupted_cache_state_raises():
    class Capture:
        cache = None

        def on_environment(self, env):
            pass

        def on_wired(self, env, machine, cache):
            self.cache = cache

    capture = Capture()
    run_experiment(small_config(), instrument=capture)
    cache = capture.cache
    assert cache is not None
    cache.check_invariants()  # healthy after the run
    cache.unused_prefetched += 1  # desync counter from budget holders
    with pytest.raises(InvariantViolation, match="prefetch-unused"):
        cache.check_invariants()


def test_auditor_rejects_nonpositive_sweep_interval():
    auditor = Auditor(sweep_interval=0.0)
    with pytest.raises(InvariantViolation, match="sweep interval"):
        run_experiment(small_config(), instrument=auditor)


# ------------------------------------------------------ audited runs


def test_run_with_audit_reports_activity():
    report = run_with_audit(small_config())
    assert report.n_events > 0
    assert len(report.trace_digest) == 32  # blake2b/16 hex
    assert report.invariant_sweeps > 0
    assert report.result.metrics.total_accesses == 80


def test_run_with_audit_sweeps_scale_with_interval():
    fine = run_with_audit(small_config(), sweep_interval=50.0)
    coarse = run_with_audit(small_config(), sweep_interval=1000.0)
    assert fine.invariant_sweeps > coarse.invariant_sweeps


# ---------------------------------------------- twice-run determinism proof


@pytest.mark.parametrize("seed", [1, 7])
@pytest.mark.parametrize(
    "prefetch", [True, False], ids=["prefetch", "no-prefetch"]
)
def test_twice_run_identical(seed, prefetch):
    """Acceptance: a 4-node/4-disk experiment run twice produces identical
    event-trace hashes, for two seeds in both prefetch configurations."""
    report = run_twice_and_diff(small_config(seed=seed, prefetch=prefetch))
    assert report.identical, report.summary()
    assert "IDENTICAL" in report.summary()


def test_different_seeds_diverge():
    a = run_with_audit(small_config(seed=1))
    b = run_with_audit(small_config(seed=2))
    assert a.trace_digest != b.trace_digest
