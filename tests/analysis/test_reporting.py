"""SARIF / JSON emitters and finding fingerprints."""

import json
from pathlib import Path

from repro.analysis.reporting import (
    diagnostic_fingerprint,
    diagnostics_to_json,
    load_diagnostics_json,
    rule_catalogue,
    to_sarif,
    write_json,
    write_sarif,
)
from repro.analysis.rules import Diagnostic


def _diag(path="/base/repro/fs/mod.py", line=3, rule="rng", msg="bad"):
    return Diagnostic(
        path=Path(path), line=line, col=0, rule=rule, message=msg
    )


def test_rule_catalogue_includes_flow_rules():
    ids = [rule_id for rule_id, _ in rule_catalogue()]
    assert "rng" in ids and "wallclock" in ids
    assert "flow-taint" in ids and "flow-purity" in ids


def test_fingerprint_ignores_line_numbers():
    base = Path("/base")
    a = _diag(line=3)
    b = _diag(line=300)
    assert diagnostic_fingerprint(a, base) == diagnostic_fingerprint(b, base)


def test_fingerprint_distinguishes_rule_path_message():
    base = Path("/base")
    fp = diagnostic_fingerprint(_diag(), base)
    assert fp != diagnostic_fingerprint(_diag(rule="wallclock"), base)
    assert fp != diagnostic_fingerprint(_diag(msg="other"), base)
    assert fp != diagnostic_fingerprint(
        _diag(path="/base/repro/fs/other.py"), base
    )


def test_sarif_payload_structure(tmp_path):
    base = tmp_path
    diag = _diag(path=str(tmp_path / "repro/fs/mod.py"))
    payload = to_sarif([diag], base)
    assert payload["version"] == "2.1.0"
    (run,) = payload["runs"]
    assert run["tool"]["driver"]["name"] == "simlint"
    rule_ids = [r["id"] for r in run["tool"]["driver"]["rules"]]
    assert "flow-taint" in rule_ids
    (result,) = run["results"]
    assert result["ruleId"] == "rng"
    assert result["level"] == "error"
    loc = result["locations"][0]["physicalLocation"]
    assert loc["artifactLocation"]["uri"] == "repro/fs/mod.py"
    assert loc["artifactLocation"]["uriBaseId"] == "SRCROOT"
    assert loc["region"]["startLine"] == 3
    assert result["partialFingerprints"]["simlint/v1"]
    assert result["ruleIndex"] == rule_ids.index("rng")
    assert "SRCROOT" in run["originalUriBaseIds"]


def test_write_sarif_is_valid_json(tmp_path):
    out = tmp_path / "out.sarif"
    write_sarif([_diag()], Path("/base"), out)
    payload = json.loads(out.read_text())
    assert payload["runs"][0]["results"]


def test_json_emitter_round_trip(tmp_path):
    out = tmp_path / "findings.json"
    diag = _diag()
    write_json([diag], Path("/base"), out)
    entries = load_diagnostics_json(out)
    assert entries == diagnostics_to_json([diag], Path("/base"))
    (entry,) = entries
    assert entry["path"] == "repro/fs/mod.py"
    assert entry["rule"] == "rng"
    assert entry["fingerprint"] == diagnostic_fingerprint(
        diag, Path("/base")
    )


def test_paths_outside_base_kept_verbatim():
    entry = diagnostics_to_json(
        [_diag(path="/elsewhere/x.py")], Path("/base")
    )[0]
    assert entry["path"] == "/elsewhere/x.py"
