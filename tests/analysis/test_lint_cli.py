"""``repro lint``: driver orchestration, baseline gate, emitters, CLI."""

import json
from pathlib import Path

from repro.analysis.lint import main, run_lint
from repro.cli import build_parser


def _seed_tree(tmp_path, kernel_body="    return stamp()\n"):
    """A tree with one suppressed-wallclock chain into sim/."""
    util = tmp_path / "repro" / "util"
    sim = tmp_path / "repro" / "sim"
    util.mkdir(parents=True)
    sim.mkdir(parents=True)
    (util / "clock.py").write_text(
        "import time\n\n"
        "def stamp():\n"
        "    return time.time()  # simlint: allow-wallclock\n"
    )
    (sim / "kernel.py").write_text(
        "from repro.util.clock import stamp\n\n"
        "def step():\n" + kernel_body
    )
    return tmp_path


def test_run_lint_combines_syntactic_and_flow(tmp_path):
    root = _seed_tree(tmp_path)
    (tmp_path / "repro" / "sim" / "bad.py").write_text("import random\n")
    result = run_lint([root], base=root)
    assert sorted(d.rule for d in result.findings) == [
        "flow-taint",
        "rng",
    ]
    assert not result.ok


def test_main_exit_codes(tmp_path, capsys):
    root = _seed_tree(tmp_path)
    assert main([str(root)]) == 1
    out = capsys.readouterr().out
    assert "flow-taint" in out
    assert main([str(root), "--no-flow", "--no-cache"]) == 0
    assert main([]) == 2
    assert main(["--update-baseline", str(root)]) == 2
    assert main(["--jobs", "0", str(root)]) == 2
    assert main(["--list-rules"]) == 0
    listing = capsys.readouterr().out
    assert "flow-taint" in listing and "flow-purity" in listing


def test_baseline_update_then_gate(tmp_path, capsys):
    root = _seed_tree(tmp_path)
    baseline = tmp_path / "baseline.json"
    args = [str(root), "--base", str(root), "--baseline", str(baseline)]
    # Update: records the finding and passes.
    assert main(args + ["--update-baseline", "--no-cache"]) == 0
    assert baseline.exists()
    # Gate: the same finding is known, so the run passes.
    assert main(args + ["--no-cache"]) == 0
    assert "known finding(s)" in capsys.readouterr().err
    # A new finding fails the gate and is the only one printed.
    (root / "repro" / "sim" / "bad.py").write_text("import random\n")
    assert main(args + ["--no-cache"]) == 1
    out = capsys.readouterr().out
    assert "rng" in out and "flow-taint" not in out


def test_baseline_stale_entries_warned(tmp_path, capsys):
    root = _seed_tree(tmp_path)
    baseline = tmp_path / "baseline.json"
    args = [str(root), "--base", str(root), "--baseline", str(baseline)]
    assert main(args + ["--update-baseline", "--no-cache"]) == 0
    # Fix the finding: the baseline entry goes stale but the run passes.
    (root / "repro" / "sim" / "kernel.py").write_text("x = 1\n")
    capsys.readouterr()
    assert main(args + ["--no-cache"]) == 0
    assert "stale baseline entry" in capsys.readouterr().err


def test_missing_baseline_gates_as_empty(tmp_path):
    root = _seed_tree(tmp_path)
    missing = tmp_path / "nope.json"
    assert (
        main(
            [str(root), "--baseline", str(missing), "--no-cache"]
        )
        == 1
    )
    assert not missing.exists()


def test_sarif_and_json_outputs(tmp_path):
    root = _seed_tree(tmp_path)
    sarif = tmp_path / "out.sarif"
    plain = tmp_path / "out.json"
    main(
        [
            str(root),
            "--base",
            str(root),
            "--sarif",
            str(sarif),
            "--json",
            str(plain),
            "--no-cache",
        ]
    )
    payload = json.loads(sarif.read_text())
    assert payload["runs"][0]["results"]
    entries = json.loads(plain.read_text())
    assert entries[0]["rule"] == "flow-taint"
    assert entries[0]["path"] == "repro/sim/kernel.py"


def test_cache_integration_warm_run(tmp_path, capsys):
    root = _seed_tree(tmp_path)
    cache_dir = tmp_path / "cache"
    args = [
        str(root),
        "--cache-dir",
        str(cache_dir),
        "--stats",
        "--no-flow",
    ]
    assert main(args) == 0
    assert "2 analyzed, 0 from cache" in capsys.readouterr().err
    assert main(args) == 0
    assert "0 analyzed, 2 from cache" in capsys.readouterr().err


def test_select_filters_rules(tmp_path):
    root = _seed_tree(tmp_path)
    (root / "repro" / "sim" / "bad.py").write_text("import random\n")
    result = run_lint([root], base=root, select=["rng"])
    assert [d.rule for d in result.findings] == ["rng"]


def test_repro_cli_has_lint_verb(tmp_path):
    parser = build_parser()
    args = parser.parse_args(["lint", str(tmp_path), "--no-cache"])
    assert args.func(args) == 0


def test_shipped_tree_flow_clean():
    """Acceptance: the full src/ scan (syntactic + flow) is clean."""
    src = Path(__file__).resolve().parents[2] / "src"
    result = run_lint([src], base=src.parent)
    assert result.findings == []
