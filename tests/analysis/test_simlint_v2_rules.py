"""simlint v2 satellites: widened source catalogues, overlapping-path
dedup, and suppression edge cases."""

from repro.analysis.simlint import collect_files, lint_paths


def _lint_snippet(tmp_path, source, rel="repro/fs/mod.py"):
    path = tmp_path / rel
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(source)
    return lint_paths([tmp_path])


def _rules(findings):
    return [d.rule for d in findings]


# ----------------------------------------- widened wall-clock catalogue


def test_wallclock_flags_calendar_functions(tmp_path):
    for func in ("localtime", "gmtime", "ctime", "asctime", "strftime"):
        findings = _lint_snippet(
            tmp_path,
            f"import time\n\ndef f():\n    return time.{func}()\n",
        )
        assert _rules(findings) == ["wallclock"], func


def test_wallclock_flags_calendar_imports(tmp_path):
    findings = _lint_snippet(
        tmp_path, "from time import strftime, localtime\n"
    )
    assert _rules(findings) == ["wallclock"]
    assert "strftime" in findings[0].message
    assert "localtime" in findings[0].message


def test_wallclock_flags_os_times(tmp_path):
    findings = _lint_snippet(
        tmp_path, "import os\n\ndef f():\n    return os.times()\n"
    )
    assert _rules(findings) == ["wallclock"]
    findings = _lint_snippet(tmp_path, "from os import times\n")
    assert _rules(findings) == ["wallclock"]


def test_wallclock_negative_os_path_clean(tmp_path):
    findings = _lint_snippet(
        tmp_path,
        "import os\n\ndef f(p):\n    return os.path.join(p, 'x')\n",
    )
    assert findings == []


# ------------------------------------------------ widened RNG catalogue


def test_rng_flags_os_urandom(tmp_path):
    findings = _lint_snippet(
        tmp_path, "import os\n\ndef f():\n    return os.urandom(8)\n"
    )
    assert _rules(findings) == ["rng"]
    findings = _lint_snippet(tmp_path, "from os import urandom\n")
    assert _rules(findings) == ["rng"]


def test_rng_flags_uuid_entropy_constructors(tmp_path):
    for func in ("uuid1", "uuid4"):
        findings = _lint_snippet(
            tmp_path,
            f"import uuid\n\ndef f():\n    return uuid.{func}()\n",
        )
        assert _rules(findings) == ["rng"], func
    findings = _lint_snippet(tmp_path, "from uuid import uuid4\n")
    assert _rules(findings) == ["rng"]


def test_rng_negative_deterministic_uuid_clean(tmp_path):
    findings = _lint_snippet(
        tmp_path,
        "import uuid\n\n"
        "def f(ns, name):\n"
        "    return uuid.uuid5(ns, name)\n",
    )
    assert findings == []


def test_rng_flags_secrets(tmp_path):
    findings = _lint_snippet(tmp_path, "import secrets\n")
    assert _rules(findings) == ["rng"]
    findings = _lint_snippet(
        tmp_path,
        "import secrets\n\ndef f():\n    return secrets.token_hex(8)\n",
    )
    assert _rules(findings) == ["rng", "rng"]
    findings = _lint_snippet(tmp_path, "from secrets import token_bytes\n")
    assert _rules(findings) == ["rng"]


# ------------------------------------------------- overlapping-path dedup


def test_collect_files_dedupes_overlapping_roots(tmp_path):
    pkg = tmp_path / "src" / "repro" / "fs"
    pkg.mkdir(parents=True)
    (pkg / "mod.py").write_text("x = 1\n")
    pairs = collect_files([tmp_path / "src", tmp_path / "src" / "repro"])
    assert [p for p, _ in pairs] == [pkg / "mod.py"]
    # The first scan root claims the file (its rel-parts classification).
    assert pairs[0][1] == tmp_path / "src"


def test_collect_files_dedupes_explicit_file_and_parent(tmp_path):
    pkg = tmp_path / "repro" / "fs"
    pkg.mkdir(parents=True)
    mod = pkg / "mod.py"
    mod.write_text("x = 1\n")
    pairs = collect_files([tmp_path, mod])
    assert len(pairs) == 1


def test_overlapping_roots_report_each_finding_once(tmp_path):
    pkg = tmp_path / "src" / "repro" / "fs"
    pkg.mkdir(parents=True)
    (pkg / "mod.py").write_text("import random\n")
    findings = lint_paths([tmp_path / "src", tmp_path / "src" / "repro"])
    assert _rules(findings) == ["rng"]


# ------------------------------------------------ suppression edge cases


def test_multi_rule_suppression_comment(tmp_path):
    findings = _lint_snippet(
        tmp_path,
        "import time\nimport numpy as np\n\n"
        "def f():\n"
        "    return (np.random.random(), time.time())"
        "  # simlint: allow-rng, allow-wallclock\n",
    )
    assert findings == []


def test_multi_rule_suppression_is_not_a_wildcard(tmp_path):
    """The directive names specific rules; others on the line still fire."""
    findings = _lint_snippet(
        tmp_path,
        "import time\nimport numpy as np\n\n"
        "def f():\n"
        "    return (np.random.random(), time.time())"
        "  # simlint: allow-rng\n",
    )
    assert _rules(findings) == ["wallclock"]


def test_skip_file_after_first_lines_is_ignored(tmp_path):
    body = "\n".join(f"x{i} = {i}" for i in range(12))
    findings = _lint_snippet(
        tmp_path, body + "\n# simlint: skip-file\nimport random\n"
    )
    assert _rules(findings) == ["rng"]


def test_skip_file_within_header_honoured(tmp_path):
    findings = _lint_snippet(
        tmp_path, '"""doc"""\n# simlint: skip-file\nimport random\n'
    )
    assert findings == []


def test_suppression_on_continuation_line_covers_statement(tmp_path):
    findings = _lint_snippet(
        tmp_path,
        "import time\n\n"
        "def f():\n"
        "    return time.time(\n"
        "    )  # simlint: allow-wallclock\n",
    )
    assert findings == []


def test_suppression_on_backslash_continuation(tmp_path):
    findings = _lint_snippet(
        tmp_path,
        "import time\n\n"
        "def f():\n"
        "    t = \\\n"
        "        time.time()  # simlint: allow-wallclock\n"
        "    return t\n",
    )
    assert findings == []


def test_continuation_suppression_does_not_leak_to_neighbours(tmp_path):
    findings = _lint_snippet(
        tmp_path,
        "import time\n\n"
        "def f():\n"
        "    a = time.time(\n"
        "    )  # simlint: allow-wallclock\n"
        "    b = time.time()\n"
        "    return a, b\n",
    )
    assert _rules(findings) == ["wallclock"]
    assert findings[0].line == 6
