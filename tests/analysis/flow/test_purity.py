"""Hook-purity proofs: observer callables must stay passive."""

from repro.analysis.flow import analyze_flow
from repro.analysis.flow.summary import module_name_for, summarize_source


def _flow(*mods):
    summaries = []
    for rel, source in mods:
        parts = tuple(rel.split("/"))
        summaries.append(
            summarize_source(
                source,
                module=module_name_for(parts),
                rel_parts=parts,
                path="/tree/" + rel,
            )
        )
    return analyze_flow(summaries)


def _rules(findings):
    return [d.rule for d in findings]


def test_pure_hook_passes():
    findings = _flow(
        (
            "repro/obs/rec.py",
            "class Rec:\n"
            "    def __init__(self, env):\n"
            "        self.n = 0\n"
            "        env.read_observer = self.on_read\n"
            "    def on_read(self, ev):\n"
            "        self.n += 1\n",
        )
    )
    assert findings == []


def test_scheduling_hook_flagged():
    findings = _flow(
        (
            "repro/sim/hooks.py",
            "def bad(env, ev):\n"
            "    env.schedule(ev)\n\n"
            "def install(env):\n"
            "    env.read_observer = bad\n",
        )
    )
    assert _rules(findings) == ["flow-purity"]
    assert ".schedule()" in findings[0].message
    assert findings[0].line == 5


def test_step_observer_registration_checked():
    findings = _flow(
        (
            "repro/sim/hooks.py",
            "def spy(env):\n"
            "    env.process(None)\n\n"
            "def install(env):\n"
            "    env.add_step_observer(spy)\n",
        )
    )
    assert _rules(findings) == ["flow-purity"]
    assert ".process()" in findings[0].message


def test_parameter_attribute_mutation_flagged():
    findings = _flow(
        (
            "repro/sim/hooks.py",
            "def bad(env, ev):\n"
            "    ev.ready = True\n\n"
            "def install(env):\n"
            "    env.read_observer = bad\n",
        )
    )
    assert _rules(findings) == ["flow-purity"]
    assert "mutates parameter 'ev'" in findings[0].message


def test_mutator_method_through_parameter_flagged():
    findings = _flow(
        (
            "repro/sim/hooks.py",
            "def bad(disk, ev):\n"
            "    disk.queue.append(ev)\n\n"
            "def install(env):\n"
            "    env.request_observer = bad\n",
        )
    )
    assert _rules(findings) == ["flow-purity"]
    assert ".append()" in findings[0].message


def test_reader_method_through_parameter_clean():
    """Non-mutating method calls through a parameter are reads."""
    findings = _flow(
        (
            "repro/sim/hooks.py",
            "def ok(disk, ev):\n"
            "    return disk.queue_depth(), ev.describe()\n\n"
            "def install(env):\n"
            "    env.request_observer = ok\n",
        )
    )
    assert findings == []


def test_transitive_impurity_via_helper():
    findings = _flow(
        (
            "repro/sim/hooks.py",
            "def kick(env, ev):\n"
            "    env.schedule(ev)\n\n"
            "def hook(env, ev):\n"
            "    kick(env, ev)\n\n"
            "def install(env):\n"
            "    env.action_observer = hook\n",
        )
    )
    assert _rules(findings) == ["flow-purity"]
    # The chain names the path from the hook to the offending helper.
    assert "via repro.sim.hooks.hook -> repro.sim.hooks.kick" in (
        findings[0].message
    )


def test_instance_attribute_callable_resolved_to_dunder_call():
    findings = _flow(
        (
            "repro/obs/rec.py",
            "class Sampler:\n"
            "    def __call__(self, env):\n"
            "        env.schedule(None)\n\n"
            "class Rec:\n"
            "    def __init__(self, env):\n"
            "        self._sampler = Sampler()\n"
            "        env.add_step_observer(self._sampler)\n",
        )
    )
    assert _rules(findings) == ["flow-purity"]
    assert "Sampler.__call__" in findings[0].message


def test_lambda_registration_unprovable():
    findings = _flow(
        (
            "repro/sim/hooks.py",
            "def install(env):\n"
            "    env.read_observer = lambda ev: None\n",
        )
    )
    assert _rules(findings) == ["flow-purity"]
    assert "cannot be proven statically" in findings[0].message


def test_external_named_callable_stays_quiet():
    """An unresolvable plain name (imported from outside the scanned
    tree) produces no finding — under-approximation, not noise."""
    findings = _flow(
        (
            "repro/sim/hooks.py",
            "from somewhere_external import probe\n\n"
            "def install(env):\n"
            "    env.read_observer = probe\n",
        )
    )
    assert findings == []


def test_allow_flow_purity_suppression():
    findings = _flow(
        (
            "repro/sim/hooks.py",
            "def bad(env, ev):\n"
            "    env.schedule(ev)\n\n"
            "def install(env):\n"
            "    env.read_observer = bad  # simlint: allow-flow-purity\n",
        )
    )
    assert findings == []


def test_self_rooted_container_mutation_is_own_bookkeeping():
    findings = _flow(
        (
            "repro/obs/rec.py",
            "class Rec:\n"
            "    def __init__(self, env):\n"
            "        self.events = []\n"
            "        env.read_observer = self.on_read\n"
            "    def on_read(self, ev):\n"
            "        self.events.append(ev)\n",
        )
    )
    assert findings == []
