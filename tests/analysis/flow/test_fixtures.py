"""Seeded regression fixtures: each tree is provably clean under the v1
per-file rules and must be flagged by the v2 whole-program passes.

These are the three holes the flow analyzer exists to close:

* ``wallclock_chain`` — a suppressed ``time.time()`` consumed through a
  two-hop helper chain from ``sim/``;
* ``rng_skipfile`` — a ``random.Random`` built in a ``skip-file``'d
  utility module and handed into ``fs/``;
* ``impure_hook`` — a read-observer that calls ``Environment.schedule``.
"""

from pathlib import Path

from repro.analysis.lint import run_lint
from repro.analysis.simlint import lint_paths

FIXTURES = Path(__file__).resolve().parent / "fixtures"


def _v2_findings(root):
    return run_lint([root], base=root, flow=True).findings


def _rules(findings):
    return [d.rule for d in findings]


# ------------------------------------------------- wallclock helper chain


def test_wallclock_chain_v1_clean():
    assert lint_paths([FIXTURES / "wallclock_chain"]) == []


def test_wallclock_chain_v2_flagged():
    findings = _v2_findings(FIXTURES / "wallclock_chain")
    assert _rules(findings) == ["flow-taint"]
    diag = findings[0]
    assert diag.path.name == "kernel.py"
    assert "repro.sim.kernel.step" in diag.message
    assert "time.time" in diag.message
    # The chain names every hop down to the source.
    assert "repro.util.clock.stamp -> repro.util.clock.read_clock" in (
        diag.message
    )


# ------------------------------------------------------ skip-file'd RNG


def test_rng_skipfile_v1_clean():
    assert lint_paths([FIXTURES / "rng_skipfile"]) == []


def test_rng_skipfile_v2_flagged():
    findings = _v2_findings(FIXTURES / "rng_skipfile")
    assert _rules(findings) == ["flow-taint"]
    diag = findings[0]
    assert diag.path.name == "server.py"
    assert "repro.fs.server.pick_block" in diag.message
    assert "random.Random" in diag.message


# ------------------------------------------------------- scheduling hook


def test_impure_hook_v1_clean():
    assert lint_paths([FIXTURES / "impure_hook"]) == []


def test_impure_hook_v2_flagged():
    findings = _v2_findings(FIXTURES / "impure_hook")
    assert _rules(findings) == ["flow-purity"]
    diag = findings[0]
    assert diag.path.name == "hooks.py"
    assert "bad_hook" in diag.message
    assert ".schedule()" in diag.message
    # Flagged at the registration site, not inside the hook body.
    assert diag.line == 19


# ---------------------------------------------------------- cross checks


def test_fixtures_clean_without_flow():
    """``--no-flow`` reproduces v1 behaviour on every fixture."""
    for tree in ("wallclock_chain", "rng_skipfile", "impure_hook"):
        result = run_lint([FIXTURES / tree], flow=False, base=FIXTURES)
        assert result.findings == [], tree


def test_combined_scan_root_changes_module_names():
    """Module names are scan-root-relative: scanned from ``fixtures/``,
    the trees' absolute ``repro.*`` imports no longer resolve, so the
    taint chains (which need the import edges) go quiet while the
    purity finding (same-module resolution) survives.  This is the
    under-approximation contract: unresolvable names produce silence,
    never false positives."""
    findings = _v2_findings(FIXTURES)
    assert _rules(findings) == ["flow-purity"]
