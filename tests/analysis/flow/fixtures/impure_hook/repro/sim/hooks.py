"""Regression fixture: an observer hook that schedules an event.  No
per-file rule covers observer registration, so v1 is clean; the purity
pass must prove ``bad_hook`` impure and flag the registration site."""


class Env:
    def __init__(self):
        self.read_observer = None

    def schedule(self, ev):
        pass


def bad_hook(env, ev):
    env.schedule(ev)


def install(env):
    env.read_observer = bad_hook
