"""Sim-critical consumer of the suppressed clock chain (v2 must flag
the ``stamp()`` call edge here; v1 sees nothing)."""

from repro.util.clock import stamp


def step() -> float:
    return stamp()
