"""Regression fixture: a wall-clock read hidden behind a two-hop helper
chain.  The direct read is suppressed for a (claimed) legitimate use, so
the per-file rules are clean — but every caller of ``stamp`` inherits
host time.  simlint v2's taint pass must flag the sim-critical caller."""

import time


def read_clock() -> float:
    return time.time()  # simlint: allow-wallclock


def stamp() -> float:
    return read_clock()
