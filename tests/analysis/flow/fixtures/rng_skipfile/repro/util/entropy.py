# simlint: skip-file
"""Regression fixture: an RNG constructed in a non-blessed module whose
per-file scan is disabled wholesale.  skip-file silences the syntactic
rules for *this* file; it must not launder the randomness handed to
sim-critical callers."""

import random


def fresh_rng():
    return random.Random()
