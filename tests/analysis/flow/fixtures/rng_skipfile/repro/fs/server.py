"""Sim-critical consumer: the file server draws blocks from an RNG made
in a skip-file'd utility module (v2 must flag the ``fresh_rng()`` call
edge here; v1 sees nothing)."""

from repro.util.entropy import fresh_rng


def pick_block(n):
    rng = fresh_rng()
    return rng.randrange(n)
