"""Interprocedural taint: propagation, blessing, frontier reporting."""

from repro.analysis.flow import analyze_flow
from repro.analysis.flow.summary import module_name_for, summarize_source


def _flow(*mods):
    """mods: (relative path, source) pairs → flow diagnostics."""
    summaries = []
    for rel, source in mods:
        parts = tuple(rel.split("/"))
        summaries.append(
            summarize_source(
                source,
                module=module_name_for(parts),
                rel_parts=parts,
                path="/tree/" + rel,
            )
        )
    return analyze_flow(summaries)


def _rules(findings):
    return [d.rule for d in findings]


def test_two_hop_suppressed_wallclock_chain_flagged():
    findings = _flow(
        (
            "repro/util/clock.py",
            "import time\n\n"
            "def read_clock():\n"
            "    return time.time()  # simlint: allow-wallclock\n\n"
            "def stamp():\n"
            "    return read_clock()\n",
        ),
        (
            "repro/sim/kernel.py",
            "from repro.util.clock import stamp\n\n"
            "def step():\n"
            "    return stamp()\n",
        ),
    )
    assert _rules(findings) == ["flow-taint"]
    assert "wallclock" in findings[0].message
    assert findings[0].line == 4  # the stamp() call edge


def test_unsuppressed_direct_source_is_v1s_job():
    """A helper v1 already flags (unsuppressed direct read) produces no
    duplicate flow finding in its callers."""
    findings = _flow(
        (
            "repro/util/clock.py",
            "import time\n\ndef stamp():\n    return time.time()\n",
        ),
        (
            "repro/sim/kernel.py",
            "from repro.util.clock import stamp\n\n"
            "def step():\n"
            "    return stamp()\n",
        ),
    )
    assert findings == []


def test_frontier_rule_one_finding_per_root_cause():
    """sim.a → sim.b → tainted helper: only the frontier edge (inside
    sim.b) is reported; sim.a stays quiet because fixing b fixes a."""
    findings = _flow(
        (
            "repro/util/clock.py",
            "import time\n\n"
            "def stamp():\n"
            "    return time.time()  # simlint: allow-wallclock\n",
        ),
        (
            "repro/sim/b.py",
            "from repro.util.clock import stamp\n\n"
            "def middle():\n"
            "    return stamp()\n",
        ),
        (
            "repro/sim/a.py",
            "from repro.sim.b import middle\n\n"
            "def outer():\n"
            "    return middle()\n",
        ),
    )
    assert len(findings) == 1
    assert findings[0].path.name == "b.py"


def test_blessed_rng_module_neither_seeds_nor_forwards():
    findings = _flow(
        (
            "repro/sim/rng.py",
            "import numpy as np\n\n"
            "def stream(seed):\n"
            "    return np.random.default_rng(seed)\n",
        ),
        (
            "repro/fs/cache.py",
            "from repro.sim.rng import stream\n\n"
            "def jitter(seed):\n"
            "    return stream(seed)\n",
        ),
    )
    assert findings == []


def test_bench_module_blessed_for_wallclock_only():
    findings = _flow(
        (
            "repro/perf/bench.py",
            "import time\nimport random\n\n"
            "def timed():\n"
            "    return time.time()  # simlint: allow-wallclock\n\n"
            "def pick():\n"
            "    return random.random()  # simlint: allow-rng\n",
        ),
        (
            "repro/sim/kernel.py",
            "from repro.perf.bench import timed, pick\n\n"
            "def step():\n"
            "    return timed() + pick()\n",
        ),
    )
    # The wallclock chain through bench is blessed; the RNG one is not.
    assert _rules(findings) == ["flow-taint"]
    assert "rng" in findings[0].message


def test_taint_through_default_argument():
    findings = _flow(
        (
            "repro/util/ids.py",
            "import uuid\n\n"
            "def tag(u=uuid.uuid4()):  # simlint: allow-rng\n"
            "    return str(u)\n",
        ),
        (
            "repro/fs/server.py",
            "from repro.util.ids import tag\n\n"
            "def name_block():\n"
            "    return tag()\n",
        ),
    )
    assert _rules(findings) == ["flow-taint"]
    assert "uuid.uuid4" in findings[0].message


def test_taint_through_package_reexport():
    findings = _flow(
        (
            "repro/util/clock.py",
            "import time\n\n"
            "def stamp():\n"
            "    return time.time()  # simlint: allow-wallclock\n",
        ),
        ("repro/util/__init__.py", "from .clock import stamp\n"),
        (
            "repro/sim/kernel.py",
            "from repro.util import stamp\n\n"
            "def step():\n"
            "    return stamp()\n",
        ),
    )
    assert _rules(findings) == ["flow-taint"]
    assert findings[0].path.name == "kernel.py"


def test_non_sim_critical_caller_not_reported():
    findings = _flow(
        (
            "repro/util/clock.py",
            "import time\n\n"
            "def stamp():\n"
            "    return time.time()  # simlint: allow-wallclock\n",
        ),
        (
            "repro/experiments/report.py",
            "from repro.util.clock import stamp\n\n"
            "def header():\n"
            "    return stamp()\n",
        ),
    )
    assert findings == []


def test_allow_flow_taint_suppression_on_call_line():
    findings = _flow(
        (
            "repro/util/clock.py",
            "import time\n\n"
            "def stamp():\n"
            "    return time.time()  # simlint: allow-wallclock\n",
        ),
        (
            "repro/sim/kernel.py",
            "from repro.util.clock import stamp\n\n"
            "def step():\n"
            "    return stamp()  # simlint: allow-flow-taint\n",
        ),
    )
    assert findings == []


def test_test_modules_neither_seed_reports_nor_get_flagged():
    findings = _flow(
        (
            "repro/util/clock.py",
            "import time\n\n"
            "def stamp():\n"
            "    return time.time()  # simlint: allow-wallclock\n",
        ),
        (
            "repro/sim/test_kernel.py",
            "from repro.util.clock import stamp\n\n"
            "def test_step():\n"
            "    assert stamp() > 0\n",
        ),
    )
    assert findings == []
