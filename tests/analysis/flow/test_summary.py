"""Per-module flow-summary extraction and its JSON round-trip."""

from repro.analysis.flow.summary import (
    FlowSummary,
    module_name_for,
    summarize_source,
)


def _summary(source, rel="repro/fs/mod.py"):
    parts = tuple(rel.split("/"))
    return summarize_source(
        source,
        module=module_name_for(parts),
        rel_parts=parts,
        path="/tree/" + rel,
    )


# ----------------------------------------------------------- module names


def test_module_name_for_plain_and_package():
    assert module_name_for(("repro", "fs", "cache.py")) == "repro.fs.cache"
    assert module_name_for(("repro", "fs", "__init__.py")) == "repro.fs"
    assert module_name_for(("top.py",)) == "top"


# -------------------------------------------------------------- extraction


def test_imports_and_aliases_recorded():
    s = _summary(
        "import numpy as np\n"
        "import os\n"
        "from repro.util.clock import stamp as now\n"
        "from repro.util import *\n"
    )
    assert s.imports["np"] == "numpy"
    assert s.imports["os"] == "os"
    assert s.imports["now"] == "repro.util.clock.stamp"
    assert "repro.util" in s.star_imports
    assert ("repro.util.clock", 3) in s.imported_modules


def test_relative_import_resolved_against_module():
    s = _summary(
        "from .clock import stamp\nfrom ..util import helper\n",
        rel="repro/sim/kernel.py",
    )
    assert s.imports["stamp"] == "repro.sim.clock.stamp"
    assert s.imports["helper"] == "repro.util.helper"


def test_relative_import_in_package_init():
    s = _summary(
        "from .clock import stamp\n", rel="repro/util/__init__.py"
    )
    assert s.imports["stamp"] == "repro.util.clock.stamp"


def test_direct_sources_with_suppression_flag():
    s = _summary(
        "import time\n\n"
        "def a():\n"
        "    return time.time()\n\n"
        "def b():\n"
        "    return time.time()  # simlint: allow-wallclock\n"
    )
    (src_a,) = s.functions["repro.fs.mod:a"].sources
    (src_b,) = s.functions["repro.fs.mod:b"].sources
    assert src_a.desc == "time.time" and not src_a.suppressed
    assert src_b.desc == "time.time" and src_b.suppressed


def test_source_normalized_through_alias():
    s = _summary(
        "import numpy as np\n\ndef f():\n    return np.random.default_rng()\n"
    )
    (src,) = s.functions["repro.fs.mod:f"].sources
    assert src.category == "rng"
    assert src.desc == "numpy.random.default_rng"


def test_bare_name_source_from_import():
    s = _summary(
        "from random import Random\n\ndef f():\n    return Random()\n"
    )
    (src,) = s.functions["repro.fs.mod:f"].sources
    assert src.desc == "random.Random"


def test_default_argument_is_def_time_source():
    s = _summary(
        "import time\n\ndef f(t=time.time()):\n    return t\n"
    )
    (src,) = s.functions["repro.fs.mod:f"].sources
    assert src.category == "wallclock"


def test_hook_registrations_both_kinds():
    s = _summary(
        "def install(env, sink):\n"
        "    env.read_observer = sink.on_read\n"
        "    env.add_step_observer(sink)\n"
        "    env.read_observer = None\n"
    )
    kinds = {(h.kind, h.target) for h in s.hooks}
    # Clearing with a constant is not a registration.
    assert kinds == {
        ("read_observer", "sink.on_read"),
        ("add_step_observer", "sink"),
    }


def test_methods_and_attr_classes():
    s = _summary(
        "class Sampler:\n"
        "    def __call__(self, env):\n"
        "        pass\n\n"
        "class Rec:\n"
        "    def __init__(self):\n"
        "        self._sampler = Sampler()\n"
    )
    assert "Sampler" in s.classes and "Rec" in s.classes
    assert s.classes["Rec"].attr_classes == {"_sampler": "Sampler"}
    assert "repro.fs.mod:Sampler.__call__" in s.functions


def test_mutations_record_root_names():
    s = _summary(
        "def f(self, ev):\n"
        "    self.count += 1\n"
        "    ev.done = True\n"
        "    ev.queue.append(1)\n"
    )
    muts = s.functions["repro.fs.mod:f"].mutations
    roots = sorted(m.root for m in muts)
    assert roots == ["ev", "ev", "self"]


def test_module_level_code_summarized_as_pseudo_function():
    s = _summary("import time\nT0 = time.time()\n")
    mod = s.functions["repro.fs.mod:<module>"]
    assert [src.desc for src in mod.sources] == ["time.time"]


# ------------------------------------------------------------- round-trip


def test_json_round_trip_is_lossless():
    s = _summary(
        "import time\n"
        "from .clock import stamp\n\n"
        "class Rec:\n"
        "    def __init__(self):\n"
        "        self.read_observer = self.on_read\n"
        "    def on_read(self, ev):\n"
        "        self.n += 1\n\n"
        "def f(t=time.time()):  # simlint: allow-wallclock\n"
        "    return stamp(t)\n",
        rel="repro/sim/mod.py",
    )
    restored = FlowSummary.from_json(s.to_json())
    assert restored == s


def test_json_round_trip_survives_serialization(tmp_path):
    import json

    s = _summary("import random\n\ndef f():\n    return random.random()\n")
    blob = json.dumps(s.to_json())
    restored = FlowSummary.from_json(json.loads(blob))
    assert restored == s
