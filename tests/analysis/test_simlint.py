"""simlint: one positive and one negative fixture per rule, suppression
syntax, path classification, CLI behaviour, and the shipped-tree gate."""

from pathlib import Path

from repro.analysis.simlint import collect_files, lint_file, lint_paths, main

SRC = Path(__file__).resolve().parents[2] / "src"


def _lint_snippet(tmp_path, source, rel="repro/fs/mod.py"):
    """Write ``source`` at ``rel`` under a scan root and lint the tree."""
    path = tmp_path / rel
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(source)
    return lint_paths([tmp_path])


def _rules(findings):
    return [d.rule for d in findings]


# ---------------------------------------------------------------- rng rule


def test_rng_flags_stdlib_random_import(tmp_path):
    findings = _lint_snippet(tmp_path, "import random\n")
    assert _rules(findings) == ["rng"]


def test_rng_flags_random_call(tmp_path):
    findings = _lint_snippet(
        tmp_path, "import foo\n\ndef f(random):\n    return random.random()\n"
    )
    assert "rng" in _rules(findings)


def test_rng_flags_default_rng_and_seedsequence(tmp_path):
    findings = _lint_snippet(
        tmp_path,
        "import numpy as np\n"
        "g = np.random.default_rng(0)\n"
        "s = SeedSequence(1)\n",
    )
    assert _rules(findings).count("rng") == 2


def test_rng_blessed_paths_exempt(tmp_path):
    source = "import numpy as np\ng = np.random.default_rng(0)\n"
    assert _lint_snippet(tmp_path, source, rel="repro/sim/rng.py") == []
    assert _lint_snippet(tmp_path, source, rel="repro/machine/disk.py") == []
    assert _lint_snippet(tmp_path, source, rel="repro/fs/cache.py") != []


def test_rng_negative_named_streams_clean(tmp_path):
    findings = _lint_snippet(
        tmp_path,
        "def f(rng):\n    return rng.exponential('compute/node0', 30.0)\n",
    )
    assert findings == []


# ----------------------------------------------------------- wallclock rule


def test_wallclock_flags_time_time(tmp_path):
    findings = _lint_snippet(
        tmp_path, "import time\n\ndef f():\n    return time.time()\n"
    )
    assert _rules(findings) == ["wallclock"]


def test_wallclock_flags_perf_counter_import(tmp_path):
    findings = _lint_snippet(tmp_path, "from time import perf_counter\n")
    assert _rules(findings) == ["wallclock"]


def test_wallclock_flags_datetime_now(tmp_path):
    findings = _lint_snippet(
        tmp_path,
        "import datetime\n\ndef f():\n    return datetime.datetime.now()\n",
    )
    assert _rules(findings) == ["wallclock"]


def test_wallclock_suppression_comment(tmp_path):
    findings = _lint_snippet(
        tmp_path,
        "import time\n\ndef f():\n"
        "    return time.time()  # simlint: allow-wallclock\n",
        rel="repro/metrics/report.py",
    )
    assert findings == []


def test_wallclock_negative_env_now_clean(tmp_path):
    findings = _lint_snippet(
        tmp_path, "def f(env):\n    return env.now\n"
    )
    assert findings == []


# ----------------------------------------------------------- unordered rule


def test_unordered_flags_set_literal_iteration(tmp_path):
    findings = _lint_snippet(
        tmp_path, "def f():\n    for x in {1, 2, 3}:\n        yield x\n"
    )
    assert _rules(findings) == ["unordered"]


def test_unordered_flags_keys_iteration(tmp_path):
    findings = _lint_snippet(
        tmp_path, "def f(d):\n    return [k for k in d.keys()]\n"
    )
    assert _rules(findings) == ["unordered"]


def test_unordered_flags_local_set_inference(tmp_path):
    findings = _lint_snippet(
        tmp_path,
        "def f(items):\n"
        "    pending = set(items)\n"
        "    for x in pending:\n"
        "        yield x\n",
    )
    assert _rules(findings) == ["unordered"]


def test_unordered_sorted_wrapper_clean(tmp_path):
    findings = _lint_snippet(
        tmp_path,
        "def f(d, s):\n"
        "    for k in sorted(d.keys()):\n"
        "        yield k\n"
        "    for x in sorted(s):\n"
        "        yield x\n",
    )
    assert findings == []


def test_unordered_only_in_sim_critical_packages(tmp_path):
    source = "def f():\n    for x in {1, 2}:\n        yield x\n"
    assert _lint_snippet(tmp_path, source, rel="repro/experiments/a.py") == []
    assert _lint_snippet(tmp_path, source, rel="repro/workload/a.py") != []


def test_unordered_membership_test_clean(tmp_path):
    findings = _lint_snippet(
        tmp_path,
        "def f(xs):\n"
        "    seen = set()\n"
        "    return [x for x in xs if x not in seen]\n",
    )
    assert findings == []


# -------------------------------------------------------------- assert rule


def test_assert_flagged_in_library_code(tmp_path):
    findings = _lint_snippet(tmp_path, "def f(x):\n    assert x > 0\n")
    assert _rules(findings) == ["assert"]


def test_assert_allowed_in_tests(tmp_path):
    findings = _lint_snippet(
        tmp_path,
        "def test_f():\n    assert 1 + 1 == 2\n",
        rel="tests/fs/test_mod.py",
    )
    assert findings == []


def test_assert_suppression(tmp_path):
    findings = _lint_snippet(
        tmp_path, "def f(x):\n    assert x  # simlint: allow-assert\n"
    )
    assert findings == []


def test_invariant_call_clean(tmp_path):
    findings = _lint_snippet(
        tmp_path,
        "from repro.analysis.invariants import invariant\n\n"
        "def f(x):\n    invariant(x > 0, 'x must be positive', x)\n",
    )
    assert findings == []


# -------------------------------------------------------------- queues rule


def test_queues_flags_pop_zero(tmp_path):
    findings = _lint_snippet(
        tmp_path, "def f(q):\n    return q.pop(0)\n", rel="repro/sim/a.py"
    )
    assert _rules(findings) == ["queues"]
    assert "popleft" in findings[0].message


def test_queues_flags_insert_zero(tmp_path):
    findings = _lint_snippet(
        tmp_path,
        "def f(q, x):\n    q.insert(0, x)\n",
        rel="repro/perf/a.py",
    )
    assert _rules(findings) == ["queues"]
    assert "appendleft" in findings[0].message


def test_queues_negative_other_indices_clean(tmp_path):
    findings = _lint_snippet(
        tmp_path,
        "def f(q, x):\n"
        "    a = q.pop()\n"
        "    b = q.pop(1)\n"
        "    q.insert(2, x)\n"
        "    return a, b\n",
        rel="repro/sim/a.py",
    )
    assert findings == []


def test_queues_only_in_sim_critical_packages(tmp_path):
    source = "def f(q):\n    return q.pop(0)\n"
    assert _lint_snippet(tmp_path, source, rel="repro/metrics/a.py") == []
    assert _lint_snippet(tmp_path, source, rel="repro/prefetch/a.py") != []


def test_queues_suppression(tmp_path):
    findings = _lint_snippet(
        tmp_path,
        "def f(q):\n    return q.pop(0)  # simlint: allow-queues\n",
        rel="repro/sim/a.py",
    )
    assert findings == []


def test_perf_package_is_sim_critical(tmp_path):
    findings = _lint_snippet(
        tmp_path,
        "import time\n\ndef f():\n    return time.time()\n",
        rel="repro/perf/a.py",
    )
    assert "wallclock" in _rules(findings)


def test_adaptive_package_is_sim_critical(tmp_path):
    # The adaptive prefetch subsystem is registered sim-critical both via
    # its parent ("prefetch") and by its own name, so the determinism
    # rules follow it even if it is ever relocated.
    source = "def f(q):\n    return q.pop(0)\n"
    assert _lint_snippet(tmp_path, source, rel="repro/adaptive/a.py") != []
    assert (
        _lint_snippet(
            tmp_path, source, rel="repro/prefetch/adaptive/a.py"
        )
        != []
    )


# -------------------------------------------------------- driver behaviour


def test_skip_file_directive(tmp_path):
    findings = _lint_snippet(
        tmp_path, "# simlint: skip-file\nimport random\n"
    )
    assert findings == []


def test_syntax_error_reported(tmp_path):
    findings = _lint_snippet(tmp_path, "def f(:\n")
    assert _rules(findings) == ["parse"]


def test_lint_file_single(tmp_path):
    path = tmp_path / "standalone.py"
    path.write_text("import random\n")
    findings = lint_file(path, tmp_path)
    assert _rules(findings) == ["rng"]


def test_main_exit_codes(tmp_path, capsys):
    bad = tmp_path / "repro" / "fs"
    bad.mkdir(parents=True)
    (bad / "bad.py").write_text("import time\nt = time.time()\n")
    assert main([str(tmp_path)]) == 1
    out = capsys.readouterr().out
    assert "bad.py:2" in out and "simlint[wallclock]" in out

    (bad / "bad.py").write_text("x = 1\n")
    assert main([str(tmp_path)]) == 0
    assert main([]) == 2
    assert main(["--list-rules"]) == 0
    assert main(["--select", "nope", str(tmp_path)]) == 2
    assert main(["--select", "rng", str(tmp_path)]) == 0


def test_pycache_and_pyc_excluded(tmp_path):
    """Bytecode caches never reach the parser, whether discovered via a
    directory walk or passed explicitly as files."""
    pkg = tmp_path / "repro" / "fs"
    cache = pkg / "__pycache__"
    cache.mkdir(parents=True)
    (pkg / "ok.py").write_text("x = 1\n")
    # A stale source copy inside __pycache__ and a binary .pyc: both are
    # noise that previously crashed or double-reported the walk.
    stale = cache / "ok.py"
    stale.write_text("import random\n")
    pyc = cache / "ok.cpython-311.pyc"
    pyc.write_bytes(b"\x00\x01\x02not python source")

    assert lint_paths([tmp_path]) == []
    assert lint_paths([stale]) == []
    assert lint_paths([pyc]) == []
    assert [p for p, _ in collect_files([tmp_path])] == [pkg / "ok.py"]


def test_injected_violation_in_fs_is_caught(tmp_path):
    """Acceptance: a random.random()/time.time() injected into a copy of
    src/repro/fs is flagged with file:line diagnostics."""
    import shutil

    dst = tmp_path / "src" / "repro" / "fs"
    shutil.copytree(SRC / "repro" / "fs", dst)
    assert lint_paths([tmp_path / "src"]) == []

    victim = dst / "cache.py"
    victim.write_text(
        victim.read_text()
        + "\n\nimport random\n\ndef _jitter():\n    return random.random()\n"
    )
    findings = lint_paths([tmp_path / "src"])
    assert findings and all(d.rule == "rng" for d in findings)
    assert all(d.path == victim for d in findings)
    assert all(d.line > 0 for d in findings)


def test_shipped_tree_is_clean():
    """Acceptance: simlint exits 0 on the shipped src/ tree."""
    assert lint_paths([SRC]) == []
