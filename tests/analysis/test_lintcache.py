"""Incremental lint cache: content-addressed reuse of per-file analysis."""

from repro.analysis.lintcache import (
    FileAnalysis,
    LintCache,
    analyze_one,
    analyze_tree,
    file_digest,
)


def _tree(tmp_path):
    root = tmp_path / "proj"
    fs = root / "repro" / "fs"
    fs.mkdir(parents=True)
    (fs / "a.py").write_text("import random\n")
    (fs / "b.py").write_text("x = 1\n")
    return root


def test_warm_rescan_analyzes_zero_files(tmp_path):
    """Acceptance: a warm incremental re-scan re-analyzes nothing."""
    root = _tree(tmp_path)
    cache = LintCache(tmp_path / "cache")
    _, cold = analyze_tree([root], cache=cache)
    assert cold == {"files": 2, "analyzed": 2, "cached": 0}
    results, warm = analyze_tree([root], cache=cache)
    assert warm == {"files": 2, "analyzed": 0, "cached": 2}
    assert all(r.from_cache for r in results)
    # Cached diagnostics are identical to fresh ones.
    assert [d.rule for r in results for d in r.diagnostics] == ["rng"]


def test_editing_one_file_invalidates_only_it(tmp_path):
    root = _tree(tmp_path)
    cache = LintCache(tmp_path / "cache")
    analyze_tree([root], cache=cache)
    (root / "repro" / "fs" / "b.py").write_text("y = 2\n")
    _, stats = analyze_tree([root], cache=cache)
    assert stats == {"files": 2, "analyzed": 1, "cached": 1}


def test_digest_depends_on_relative_location(tmp_path):
    f = tmp_path / "mod.py"
    f.write_text("x = 1\n")
    assert file_digest(f, ("repro", "fs", "mod.py")) != file_digest(
        f, ("repro", "sim", "mod.py")
    )


def test_corrupt_cache_entry_is_a_miss(tmp_path):
    root = _tree(tmp_path)
    cache = LintCache(tmp_path / "cache")
    analyze_tree([root], cache=cache)
    for entry in cache.directory.glob("*.json"):
        entry.write_text("{not json")
    cache2 = LintCache(tmp_path / "cache")
    _, stats = analyze_tree([root], cache=cache2)
    assert stats["analyzed"] == 2
    assert cache2.misses == 2


def test_file_analysis_json_round_trip(tmp_path):
    root = _tree(tmp_path)
    analysis = analyze_one(root / "repro" / "fs" / "a.py", root)
    restored = FileAnalysis.from_json(analysis.to_json())
    assert restored.digest == analysis.digest
    assert restored.diagnostics == analysis.diagnostics
    assert restored.summary == analysis.summary


def test_syntax_error_produces_parse_diag_and_inert_summary(tmp_path):
    root = tmp_path / "proj"
    (root / "repro").mkdir(parents=True)
    bad = root / "repro" / "bad.py"
    bad.write_text("def f(:\n")
    analysis = analyze_one(bad, root)
    assert [d.rule for d in analysis.diagnostics] == ["parse"]
    assert analysis.summary.skip_file  # never feeds flow analysis


def test_parallel_jobs_match_serial(tmp_path):
    root = _tree(tmp_path)
    serial, _ = analyze_tree([root])
    parallel, _ = analyze_tree([root], jobs=2)
    assert [a.path for a in serial] == [a.path for a in parallel]
    assert [a.diagnostics for a in serial] == [
        a.diagnostics for a in parallel
    ]
    assert [a.summary for a in serial] == [a.summary for a in parallel]


def test_cache_hit_counters(tmp_path):
    root = _tree(tmp_path)
    cache = LintCache(tmp_path / "cache")
    analyze_tree([root], cache=cache)
    assert (cache.hits, cache.misses) == (0, 2)
    analyze_tree([root], cache=cache)
    assert (cache.hits, cache.misses) == (2, 2)
    assert "2 hit(s)" in cache.summary()
