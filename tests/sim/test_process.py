"""Tests for Process semantics and interrupts."""

import pytest

from repro.sim import Environment, Interrupt


def test_process_is_event_with_return_value():
    env = Environment()

    def proc():
        yield env.timeout(1.0)
        return 99

    p = env.process(proc())
    env.run()
    assert p.value == 99
    assert not p.is_alive


def test_process_name_defaults_to_generator_name():
    env = Environment()

    def my_worker():
        yield env.timeout(1.0)

    p = env.process(my_worker())
    assert "process" in p.name or "my_worker" in p.name
    env.run()


def test_process_explicit_name():
    env = Environment()

    def gen():
        yield env.timeout(1.0)

    p = env.process(gen(), name="disk-3")
    assert p.name == "disk-3"
    env.run()


def test_non_generator_rejected():
    env = Environment()
    with pytest.raises(TypeError):
        env.process(lambda: None)


def test_yield_non_event_raises():
    env = Environment()

    def bad():
        yield 42

    env.process(bad())
    with pytest.raises(RuntimeError, match="non-event"):
        env.run()


def test_interrupt_delivers_cause():
    env = Environment()
    causes = []

    def victim():
        try:
            yield env.timeout(100.0)
        except Interrupt as i:
            causes.append((env.now, i.cause))

    def attacker(v):
        yield env.timeout(3.0)
        v.interrupt("stop it")

    v = env.process(victim())
    env.process(attacker(v))
    env.run()
    assert causes == [(3.0, "stop it")]


def test_interrupt_detaches_but_event_still_fires():
    env = Environment()
    log = []

    def victim(shared):
        try:
            yield shared
        except Interrupt:
            log.append("interrupted")
        yield env.timeout(50.0)
        log.append("resumed-done")

    def other(shared):
        value = yield shared
        log.append(f"other-got-{value}")

    shared = env.event()
    v = env.process(victim(shared))
    env.process(other(shared))

    def driver():
        yield env.timeout(1.0)
        v.interrupt()
        yield env.timeout(1.0)
        shared.succeed("payload")

    env.process(driver())
    env.run()
    assert "interrupted" in log
    assert "other-got-payload" in log
    assert "resumed-done" in log


def test_interrupt_terminated_process_raises():
    env = Environment()

    def quick():
        yield env.timeout(1.0)

    p = env.process(quick())
    env.run()
    with pytest.raises(RuntimeError, match="terminated"):
        p.interrupt()


def test_self_interrupt_raises():
    env = Environment()
    errors = []

    def proc():
        me = env.active_process
        try:
            me.interrupt()
        except RuntimeError as exc:
            errors.append(exc)
        yield env.timeout(1.0)

    env.process(proc())
    env.run()
    assert len(errors) == 1


def test_uncaught_interrupt_fails_process():
    env = Environment()

    def victim():
        yield env.timeout(100.0)

    def catcher(v):
        yield env.timeout(1.0)
        v.interrupt("die")
        try:
            yield v
        except Interrupt as i:
            return f"victim died: {i.cause}"

    v = env.process(victim())
    c = env.process(catcher(v))
    env.run()
    assert c.value == "victim died: die"


def test_waiting_on_failed_process_propagates():
    env = Environment()

    def bad():
        yield env.timeout(1.0)
        raise OSError("disk on fire")

    def waiter(p):
        try:
            yield p
        except OSError as exc:
            return str(exc)

    p = env.process(bad())
    w = env.process(waiter(p))
    env.run()
    assert w.value == "disk on fire"


def test_process_target_introspection():
    env = Environment()

    def proc():
        yield env.timeout(10.0)

    p = env.process(proc())
    env.run(until=5.0)
    assert p.target is not None
    assert p.is_alive


def test_many_sequential_processes_deterministic():
    def run_once():
        env = Environment()
        order = []

        def worker(i):
            yield env.timeout(float(i % 3))
            order.append(i)

        for i in range(50):
            env.process(worker(i))
        env.run()
        return order

    assert run_once() == run_once()
