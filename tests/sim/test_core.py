"""Tests for the Environment scheduler."""

import math

import pytest

from repro.sim import EmptySchedule, Environment


def test_clock_starts_at_zero():
    env = Environment()
    assert env.now == 0.0


def test_clock_custom_initial_time():
    env = Environment(initial_time=5.0)
    assert env.now == 5.0


def test_timeout_advances_clock():
    env = Environment()
    env.timeout(10.0)
    env.run()
    assert env.now == 10.0


def test_run_until_time():
    env = Environment()
    env.timeout(100.0)
    env.run(until=40.0)
    assert env.now == 40.0


def test_run_until_past_time_raises():
    env = Environment(initial_time=10.0)
    with pytest.raises(ValueError):
        env.run(until=5.0)


def test_run_until_event_returns_value():
    env = Environment()

    def proc():
        yield env.timeout(3.0)
        return "done"

    p = env.process(proc())
    assert env.run(until=p) == "done"
    assert env.now == 3.0


def test_run_empty_returns_none():
    env = Environment()
    assert env.run() is None


def test_step_empty_raises():
    env = Environment()
    with pytest.raises(EmptySchedule):
        env.step()


def test_peek_empty_is_inf():
    env = Environment()
    assert env.peek() == math.inf


def test_peek_returns_next_event_time():
    env = Environment()
    env.timeout(7.0)
    env.timeout(3.0)
    assert env.peek() == 3.0


def test_events_processed_in_time_order():
    env = Environment()
    order = []

    def proc(delay, tag):
        yield env.timeout(delay)
        order.append(tag)

    env.process(proc(5.0, "b"))
    env.process(proc(1.0, "a"))
    env.process(proc(9.0, "c"))
    env.run()
    assert order == ["a", "b", "c"]


def test_simultaneous_events_fifo_by_schedule_order():
    env = Environment()
    order = []

    def proc(tag):
        yield env.timeout(1.0)
        order.append(tag)

    for tag in ("x", "y", "z"):
        env.process(proc(tag))
    env.run()
    assert order == ["x", "y", "z"]


def test_run_until_already_processed_event():
    env = Environment()
    ev = env.event()
    ev.succeed(42)
    env.run()  # processes ev
    assert env.run(until=ev) == 42


def test_run_until_never_fired_event_raises():
    env = Environment()
    ev = env.event()  # never triggered
    env.timeout(1.0)
    with pytest.raises(RuntimeError, match="never fired"):
        env.run(until=ev)


def test_unhandled_process_failure_crashes_run():
    env = Environment()

    def boom():
        yield env.timeout(1.0)
        raise ValueError("bang")

    env.process(boom())
    with pytest.raises(ValueError, match="bang"):
        env.run()


def test_nested_process_spawning():
    env = Environment()
    results = []

    def child(n):
        yield env.timeout(n)
        return n * 2

    def parent():
        a = yield env.process(child(2))
        b = yield env.process(child(3))
        results.append(a + b)

    env.process(parent())
    env.run()
    assert results == [10]
    assert env.now == 5.0


def test_active_process_tracking():
    env = Environment()
    seen = []

    def proc():
        seen.append(env.active_process)
        yield env.timeout(1.0)
        seen.append(env.active_process)

    p = env.process(proc())
    assert env.active_process is None
    env.run()
    assert seen == [p, p]
    assert env.active_process is None


# -- peek / event_count across queue backends --------------------------------
# The pluggable-scheduler refactor must keep these introspection hooks
# exact for both backends (the bench harness and run loop rely on them).

_BACKENDS = ("heap", "calendar")


@pytest.mark.parametrize("scheduler", _BACKENDS)
def test_peek_empty_is_inf_both_backends(scheduler):
    env = Environment(scheduler=scheduler)
    assert env.peek() == math.inf


@pytest.mark.parametrize("scheduler", _BACKENDS)
def test_peek_tracks_next_event_both_backends(scheduler):
    env = Environment(scheduler=scheduler)
    env.timeout(7.0)
    env.timeout(3.0)
    assert env.peek() == 3.0
    env.step()  # pops the 3.0 timeout
    assert env.peek() == 7.0
    env.step()
    assert env.peek() == math.inf


@pytest.mark.parametrize("scheduler", _BACKENDS)
def test_peek_after_cancelled_claim(scheduler):
    # A cancelled resource claim never reaches the queue, so peek only
    # ever sees genuinely scheduled events.
    from repro.sim import Resource

    env = Environment(scheduler=scheduler)
    resource = Resource(env, capacity=1)

    def holder():
        req = resource.request()
        yield req
        yield env.timeout(10.0)
        resource.release(req)

    def quitter():
        req = resource.request()
        giveup = env.timeout(2.0)
        yield req | giveup
        if not req.triggered:
            req.cancel()

    env.process(holder())
    env.process(quitter())
    env.run(until=5.0)
    # Only the holder's 10.0 timeout remains scheduled.
    assert env.peek() == 10.0
    env.run()
    assert env.peek() == math.inf


@pytest.mark.parametrize("scheduler", _BACKENDS)
def test_peek_across_overflow_promotion(scheduler):
    # Horizons far beyond the calendar's first year live in the
    # overflow rung; peek and pop must see through it identically.
    env = Environment(scheduler=scheduler)
    env.timeout(1e6)
    env.timeout(0.5)
    assert env.peek() == 0.5
    env.step()
    assert env.peek() == 1e6  # now served from the promoted rung
    env.step()
    assert env.now == 1e6
    assert env.peek() == math.inf


@pytest.mark.parametrize("scheduler", _BACKENDS)
def test_event_count_counts_scheduled_events(scheduler):
    env = Environment(scheduler=scheduler)
    assert env.event_count == 0
    env.timeout(1.0)
    env.timeout(2.0)
    assert env.event_count == 2
    env.run()
    # event_count is a schedule total, not a queue length.
    assert env.event_count == 2


def test_event_count_identical_across_backends():
    def run(scheduler):
        env = Environment(scheduler=scheduler)

        def ping():
            for _ in range(5):
                yield env.timeout(1.0)

        env.process(ping())
        env.process(ping())
        env.run()
        return env.event_count

    assert run("heap") == run("calendar")
