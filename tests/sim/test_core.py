"""Tests for the Environment scheduler."""

import math

import pytest

from repro.sim import EmptySchedule, Environment


def test_clock_starts_at_zero():
    env = Environment()
    assert env.now == 0.0


def test_clock_custom_initial_time():
    env = Environment(initial_time=5.0)
    assert env.now == 5.0


def test_timeout_advances_clock():
    env = Environment()
    env.timeout(10.0)
    env.run()
    assert env.now == 10.0


def test_run_until_time():
    env = Environment()
    env.timeout(100.0)
    env.run(until=40.0)
    assert env.now == 40.0


def test_run_until_past_time_raises():
    env = Environment(initial_time=10.0)
    with pytest.raises(ValueError):
        env.run(until=5.0)


def test_run_until_event_returns_value():
    env = Environment()

    def proc():
        yield env.timeout(3.0)
        return "done"

    p = env.process(proc())
    assert env.run(until=p) == "done"
    assert env.now == 3.0


def test_run_empty_returns_none():
    env = Environment()
    assert env.run() is None


def test_step_empty_raises():
    env = Environment()
    with pytest.raises(EmptySchedule):
        env.step()


def test_peek_empty_is_inf():
    env = Environment()
    assert env.peek() == math.inf


def test_peek_returns_next_event_time():
    env = Environment()
    env.timeout(7.0)
    env.timeout(3.0)
    assert env.peek() == 3.0


def test_events_processed_in_time_order():
    env = Environment()
    order = []

    def proc(delay, tag):
        yield env.timeout(delay)
        order.append(tag)

    env.process(proc(5.0, "b"))
    env.process(proc(1.0, "a"))
    env.process(proc(9.0, "c"))
    env.run()
    assert order == ["a", "b", "c"]


def test_simultaneous_events_fifo_by_schedule_order():
    env = Environment()
    order = []

    def proc(tag):
        yield env.timeout(1.0)
        order.append(tag)

    for tag in ("x", "y", "z"):
        env.process(proc(tag))
    env.run()
    assert order == ["x", "y", "z"]


def test_run_until_already_processed_event():
    env = Environment()
    ev = env.event()
    ev.succeed(42)
    env.run()  # processes ev
    assert env.run(until=ev) == 42


def test_run_until_never_fired_event_raises():
    env = Environment()
    ev = env.event()  # never triggered
    env.timeout(1.0)
    with pytest.raises(RuntimeError, match="never fired"):
        env.run(until=ev)


def test_unhandled_process_failure_crashes_run():
    env = Environment()

    def boom():
        yield env.timeout(1.0)
        raise ValueError("bang")

    env.process(boom())
    with pytest.raises(ValueError, match="bang"):
        env.run()


def test_nested_process_spawning():
    env = Environment()
    results = []

    def child(n):
        yield env.timeout(n)
        return n * 2

    def parent():
        a = yield env.process(child(2))
        b = yield env.process(child(3))
        results.append(a + b)

    env.process(parent())
    env.run()
    assert results == [10]
    assert env.now == 5.0


def test_active_process_tracking():
    env = Environment()
    seen = []

    def proc():
        seen.append(env.active_process)
        yield env.timeout(1.0)
        seen.append(env.active_process)

    p = env.process(proc())
    assert env.active_process is None
    env.run()
    assert seen == [p, p]
    assert env.active_process is None
