"""Tests for Resource, PriorityResource, Container, and Store."""

import pytest

from repro.sim import Container, Environment, PriorityResource, Resource, Store


# ---------------------------------------------------------------- Resource


def test_resource_capacity_validation():
    env = Environment()
    with pytest.raises(ValueError):
        Resource(env, capacity=0)


def test_lock_mutual_exclusion():
    env = Environment()
    lock = Resource(env, capacity=1)
    holding = []
    max_holding = []

    def user(i):
        with lock.request() as req:
            yield req
            holding.append(i)
            max_holding.append(len(holding))
            yield env.timeout(5.0)
            holding.remove(i)

    for i in range(4):
        env.process(user(i))
    env.run()
    assert max(max_holding) == 1
    assert env.now == 20.0  # fully serialized


def test_resource_fifo_order():
    env = Environment()
    res = Resource(env, capacity=1)
    grant_order = []

    def user(i):
        yield env.timeout(float(i))  # stagger arrival
        with res.request() as req:
            yield req
            grant_order.append(i)
            yield env.timeout(10.0)

    for i in range(3):
        env.process(user(i))
    env.run()
    assert grant_order == [0, 1, 2]


def test_resource_capacity_two_parallelism():
    env = Environment()
    res = Resource(env, capacity=2)

    def user():
        with res.request() as req:
            yield req
            yield env.timeout(10.0)

    for _ in range(4):
        env.process(user())
    env.run()
    assert env.now == 20.0  # two waves of two


def test_release_without_hold_raises():
    env = Environment()
    res = Resource(env)
    req = res.request()
    env.run()
    res.release(req)
    with pytest.raises(RuntimeError):
        res.release(req)


def test_resource_counts():
    env = Environment()
    res = Resource(env, capacity=1)
    observed = []

    def holder():
        with res.request() as req:
            yield req
            yield env.timeout(5.0)
            observed.append((res.count, res.waiting))

    def waiter():
        yield env.timeout(1.0)
        with res.request() as req:
            yield req

    env.process(holder())
    env.process(waiter())
    env.run()
    assert observed == [(1, 1)]


def test_resource_wait_statistics():
    env = Environment()
    res = Resource(env, capacity=1)

    def user():
        with res.request() as req:
            yield req
            yield env.timeout(10.0)

    env.process(user())
    env.process(user())
    env.run()
    assert res.grants == 2
    assert res.total_wait == pytest.approx(10.0)
    assert res.busy_time == pytest.approx(20.0)


def test_cancel_pending_request():
    env = Environment()
    res = Resource(env, capacity=1)
    granted = []

    def holder():
        with res.request() as req:
            yield req
            yield env.timeout(10.0)

    def impatient():
        yield env.timeout(1.0)
        req = res.request()
        yield env.timeout(2.0)
        req.cancel()
        granted.append("cancelled")

    def patient():
        yield env.timeout(2.0)
        with res.request() as req:
            yield req
            granted.append("patient")

    env.process(holder())
    env.process(impatient())
    env.process(patient())
    env.run()
    assert granted == ["cancelled", "patient"]


# -------------------------------------------------------- PriorityResource


def test_priority_resource_orders_by_priority():
    env = Environment()
    res = PriorityResource(env, capacity=1)
    order = []

    def holder():
        req = res.request(priority=0)
        yield req
        yield env.timeout(10.0)
        res.release(req)

    def user(prio, tag, arrive):
        yield env.timeout(arrive)
        req = res.request(priority=prio)
        yield req
        order.append(tag)
        res.release(req)

    env.process(holder())
    env.process(user(5, "low", 1.0))
    env.process(user(1, "high", 2.0))
    env.run()
    assert order == ["high", "low"]


def test_priority_resource_fifo_within_priority():
    env = Environment()
    res = PriorityResource(env, capacity=1)
    order = []

    def holder():
        req = res.request(priority=0)
        yield req
        yield env.timeout(10.0)
        res.release(req)

    def user(tag, arrive):
        yield env.timeout(arrive)
        req = res.request(priority=3)
        yield req
        order.append(tag)
        res.release(req)

    env.process(holder())
    env.process(user("first", 1.0))
    env.process(user("second", 2.0))
    env.run()
    assert order == ["first", "second"]


def test_priority_resource_cancel():
    env = Environment()
    res = PriorityResource(env, capacity=1)
    order = []

    def holder():
        req = res.request(priority=0)
        yield req
        yield env.timeout(10.0)
        res.release(req)

    def quitter():
        yield env.timeout(1.0)
        req = res.request(priority=1)
        yield env.timeout(1.0)
        req.cancel()

    def stayer():
        yield env.timeout(2.0)
        req = res.request(priority=2)
        yield req
        order.append("stayer")
        res.release(req)

    env.process(holder())
    env.process(quitter())
    env.process(stayer())
    env.run()
    assert order == ["stayer"]


# --------------------------------------------------------------- Container


def test_container_validation():
    env = Environment()
    with pytest.raises(ValueError):
        Container(env, capacity=0)
    with pytest.raises(ValueError):
        Container(env, capacity=5, init=10)
    c = Container(env, capacity=10, init=3)
    with pytest.raises(ValueError):
        c.put(0)
    with pytest.raises(ValueError):
        c.get(-1)


def test_container_get_blocks_until_put():
    env = Environment()
    c = Container(env, init=0)
    got = []

    def consumer():
        amount = yield c.get(5)
        got.append((env.now, amount))

    def producer():
        yield env.timeout(3.0)
        yield c.put(5)

    env.process(consumer())
    env.process(producer())
    env.run()
    assert got == [(3.0, 5)]
    assert c.level == 0


def test_container_put_blocks_at_capacity():
    env = Environment()
    c = Container(env, capacity=10, init=8)
    done = []

    def producer():
        yield c.put(5)
        done.append(env.now)

    def consumer():
        yield env.timeout(4.0)
        yield c.get(4)

    env.process(producer())
    env.process(consumer())
    env.run()
    assert done == [4.0]
    assert c.level == 9


# ------------------------------------------------------------------- Store


def test_store_fifo():
    env = Environment()
    store = Store(env)
    got = []

    def producer():
        for item in ("a", "b", "c"):
            yield store.put(item)
            yield env.timeout(1.0)

    def consumer():
        for _ in range(3):
            item = yield store.get()
            got.append(item)

    env.process(producer())
    env.process(consumer())
    env.run()
    assert got == ["a", "b", "c"]


def test_store_get_blocks_when_empty():
    env = Environment()
    store = Store(env)
    got = []

    def consumer():
        item = yield store.get()
        got.append((env.now, item))

    def producer():
        yield env.timeout(7.0)
        yield store.put("late")

    env.process(consumer())
    env.process(producer())
    env.run()
    assert got == [(7.0, "late")]


def test_store_capacity_blocks_put():
    env = Environment()
    store = Store(env, capacity=1)
    times = []

    def producer():
        yield store.put(1)
        times.append(env.now)
        yield store.put(2)
        times.append(env.now)

    def consumer():
        yield env.timeout(5.0)
        yield store.get()

    env.process(producer())
    env.process(consumer())
    env.run()
    assert times == [0.0, 5.0]


def test_store_filtered_get():
    env = Environment()
    store = Store(env)
    got = []

    def producer():
        yield store.put({"kind": "demand", "block": 1})
        yield store.put({"kind": "prefetch", "block": 2})

    def consumer():
        item = yield store.get(filter=lambda x: x["kind"] == "prefetch")
        got.append(item["block"])

    env.process(producer())
    env.process(consumer())
    env.run()
    assert got == [2]
    assert list(store.items) == [{"kind": "demand", "block": 1}]


def test_store_filtered_getter_does_not_starve_later_getters():
    env = Environment()
    store = Store(env)
    got = []

    def blocked_consumer():
        item = yield store.get(filter=lambda x: x == "never")
        got.append(item)

    def normal_consumer():
        yield env.timeout(1.0)
        item = yield store.get()
        got.append(item)

    def producer():
        yield env.timeout(2.0)
        yield store.put("plain")

    env.process(blocked_consumer())
    env.process(normal_consumer())
    env.process(producer())
    env.run()
    assert got == ["plain"]


def test_store_len():
    env = Environment()
    store = Store(env)

    def producer():
        yield store.put("x")
        yield store.put("y")

    env.process(producer())
    env.run()
    assert len(store) == 2
