"""Tests for Event, Timeout, and condition events."""

import pytest

from repro.sim import AllOf, AnyOf, Environment


def test_event_lifecycle():
    env = Environment()
    ev = env.event()
    assert not ev.triggered
    assert not ev.processed
    ev.succeed(7)
    assert ev.triggered
    assert not ev.processed
    env.run()
    assert ev.processed
    assert ev.ok
    assert ev.value == 7


def test_event_value_before_trigger_raises():
    env = Environment()
    ev = env.event()
    with pytest.raises(RuntimeError):
        _ = ev.value
    with pytest.raises(RuntimeError):
        _ = ev.ok


def test_double_succeed_raises():
    env = Environment()
    ev = env.event()
    ev.succeed()
    with pytest.raises(RuntimeError):
        ev.succeed()


def test_fail_requires_exception():
    env = Environment()
    ev = env.event()
    with pytest.raises(TypeError):
        ev.fail("not an exception")


def test_failed_event_delivered_to_process():
    env = Environment()
    caught = []

    def proc(ev):
        try:
            yield ev
        except KeyError as exc:
            caught.append(exc)

    ev = env.event()
    env.process(proc(ev))
    ev.fail(KeyError("oops"))
    env.run()
    assert len(caught) == 1


def test_undefused_failure_crashes():
    env = Environment()
    ev = env.event()
    ev.fail(RuntimeError("nobody caught me"))
    with pytest.raises(RuntimeError, match="nobody caught me"):
        env.run()


def test_defused_failure_is_silent():
    env = Environment()
    ev = env.event()
    ev.fail(RuntimeError("defused"))
    ev.defuse()
    env.run()  # should not raise


def test_trigger_copies_outcome():
    env = Environment()
    src = env.event()
    dst = env.event()
    src.succeed("payload")
    dst.trigger(src)
    env.run()
    assert dst.value == "payload"
    assert dst.ok


def test_timeout_value():
    env = Environment()
    t = env.timeout(2.0, value="tick")
    env.run()
    assert t.value == "tick"


def test_negative_timeout_raises():
    env = Environment()
    with pytest.raises(ValueError):
        env.timeout(-1.0)


def test_zero_timeout_fires_immediately():
    env = Environment()
    fired = []

    def proc():
        yield env.timeout(0.0)
        fired.append(env.now)

    env.process(proc())
    env.run()
    assert fired == [0.0]


def test_all_of_waits_for_all():
    env = Environment()
    times = []

    def proc():
        t1 = env.timeout(1.0, value="a")
        t2 = env.timeout(5.0, value="b")
        result = yield AllOf(env, [t1, t2])
        times.append(env.now)
        assert result[t1] == "a"
        assert result[t2] == "b"

    env.process(proc())
    env.run()
    assert times == [5.0]


def test_any_of_fires_on_first():
    env = Environment()
    times = []

    def proc():
        t1 = env.timeout(1.0, value="fast")
        t2 = env.timeout(5.0, value="slow")
        result = yield AnyOf(env, [t1, t2])
        times.append(env.now)
        assert t1 in result
        assert t2 not in result

    env.process(proc())
    env.run()
    assert times == [1.0]


def test_condition_operators():
    env = Environment()
    done = []

    def proc():
        t1 = env.timeout(1.0)
        t2 = env.timeout(2.0)
        yield t1 & t2
        done.append(env.now)
        t3 = env.timeout(1.0)
        t4 = env.timeout(10.0)
        yield t3 | t4
        done.append(env.now)

    env.process(proc())
    env.run(until=50.0)
    assert done == [2.0, 3.0]


def test_empty_all_of_fires_immediately():
    env = Environment()
    done = []

    def proc():
        yield AllOf(env, [])
        done.append(env.now)

    env.process(proc())
    env.run()
    assert done == [0.0]


def test_all_of_propagates_failure():
    env = Environment()
    caught = []

    def proc():
        good = env.timeout(1.0)
        bad = env.event()
        bad.fail(ValueError("member failed"))
        try:
            yield AllOf(env, [good, bad])
        except ValueError as exc:
            caught.append(exc)

    env.process(proc())
    env.run()
    assert len(caught) == 1


def test_nested_conditions_flatten_value():
    env = Environment()
    seen = {}

    def proc():
        t1 = env.timeout(1.0, value=1)
        t2 = env.timeout(2.0, value=2)
        t3 = env.timeout(3.0, value=3)
        result = yield (t1 & t2) & t3
        seen.update({"n": len(result), "vals": sorted(result.values())})

    env.process(proc())
    env.run()
    assert seen == {"n": 3, "vals": [1, 2, 3]}


def test_condition_value_mapping_interface():
    env = Environment()

    def proc():
        t1 = env.timeout(1.0, value="x")
        result = yield AllOf(env, [t1])
        assert list(result.keys()) == [t1]
        assert list(result.values()) == ["x"]
        assert dict(result.items()) == {t1: "x"}
        assert result == {t1: "x"}
        assert result.todict() == {t1: "x"}
        with pytest.raises(KeyError):
            _ = result[env.event()]

    env.process(proc())
    env.run()


def test_condition_rejects_foreign_events():
    env1 = Environment()
    env2 = Environment()
    with pytest.raises(ValueError):
        AllOf(env1, [env2.event()])


def test_yield_already_processed_event_resumes_immediately():
    env = Environment()
    trace = []

    def proc(ev):
        yield env.timeout(5.0)
        value = yield ev  # ev fired at t=0; must not block
        trace.append((env.now, value))

    ev = env.event()
    ev.succeed("early")
    env.process(proc(ev))
    env.run()
    assert trace == [(5.0, "early")]
