"""Tests for Tally and TimeWeighted monitors."""

import pytest

from repro.sim import Environment, Tally, TimeWeighted


# ------------------------------------------------------------------- Tally


def test_tally_empty():
    t = Tally("empty")
    assert t.count == 0
    assert t.mean == 0.0
    assert t.variance == 0.0
    assert t.min is None and t.max is None
    assert t.percentile(50) == 0.0


def test_tally_basic_stats():
    t = Tally()
    t.extend([1.0, 2.0, 3.0, 4.0])
    assert t.count == 4
    assert t.mean == pytest.approx(2.5)
    assert t.min == 1.0
    assert t.max == 4.0
    assert t.variance == pytest.approx(1.25)
    assert t.stdev == pytest.approx(1.25**0.5)


def test_tally_median_and_percentiles():
    t = Tally()
    t.extend([10.0, 20.0, 30.0, 40.0, 50.0])
    assert t.median == 30.0
    assert t.percentile(0) == 10.0
    assert t.percentile(100) == 50.0
    assert t.percentile(25) == 20.0


def test_tally_single_sample():
    t = Tally()
    t.record(7.0)
    assert t.median == 7.0
    assert t.variance == 0.0


def test_tally_cdf():
    t = Tally()
    t.extend([3.0, 1.0, 2.0])
    assert t.cdf() == [(1.0, pytest.approx(1 / 3)), (2.0, pytest.approx(2 / 3)), (3.0, 1.0)]


def test_tally_without_samples_rejects_percentile():
    t = Tally(keep_samples=False)
    t.record(1.0)
    assert t.mean == 1.0
    with pytest.raises(RuntimeError):
        t.percentile(50)
    with pytest.raises(RuntimeError):
        t.cdf()


# ------------------------------------------------------------ TimeWeighted


def test_time_weighted_average():
    env = Environment()
    tw = TimeWeighted(env, initial=0.0)

    def proc():
        yield env.timeout(10.0)
        tw.set(4.0)  # value 0 for [0,10)
        yield env.timeout(10.0)
        tw.set(2.0)  # value 4 for [10,20)
        yield env.timeout(10.0)  # value 2 for [20,30)

    env.process(proc())
    env.run()
    assert tw.time_average() == pytest.approx((0 * 10 + 4 * 10 + 2 * 10) / 30)
    assert tw.max == 4.0


def test_time_weighted_add():
    env = Environment()
    tw = TimeWeighted(env, initial=1.0)

    def proc():
        yield env.timeout(5.0)
        tw.add(2.0)
        yield env.timeout(5.0)
        tw.add(-3.0)

    env.process(proc())
    env.run()
    assert tw.value == 0.0
    assert tw.time_average() == pytest.approx((1 * 5 + 3 * 5) / 10)


def test_time_weighted_zero_span():
    env = Environment()
    tw = TimeWeighted(env, initial=5.0)
    assert tw.time_average() == 5.0


def test_time_weighted_until():
    env = Environment()
    tw = TimeWeighted(env, initial=2.0)

    def proc():
        yield env.timeout(4.0)
        tw.set(0.0)

    env.process(proc())
    env.run()
    assert tw.time_average(until=8.0) == pytest.approx((2 * 4 + 0 * 4) / 8)
