"""Tests for Barrier, Gate, and CountdownLatch."""

import pytest

from repro.sim import Barrier, CountdownLatch, Environment, Gate


# ----------------------------------------------------------------- Barrier


def test_barrier_validation():
    env = Environment()
    with pytest.raises(ValueError):
        Barrier(env, parties=0)


def test_barrier_releases_all_together():
    env = Environment()
    barrier = Barrier(env, parties=3)
    released = []

    def worker(i, delay):
        yield env.timeout(delay)
        gen = yield barrier.wait()
        released.append((env.now, i, gen))

    env.process(worker(0, 1.0))
    env.process(worker(1, 5.0))
    env.process(worker(2, 3.0))
    env.run()
    assert all(t == 5.0 for t, _, _ in released)
    assert all(g == 0 for _, _, g in released)
    assert sorted(i for _, i, _ in released) == [0, 1, 2]


def test_barrier_is_cyclic():
    env = Environment()
    barrier = Barrier(env, parties=2)
    gens = []

    def worker(delay):
        for _ in range(3):
            yield env.timeout(delay)
            gen = yield barrier.wait()
            gens.append(gen)

    env.process(worker(1.0))
    env.process(worker(2.0))
    env.run()
    assert sorted(gens) == [0, 0, 1, 1, 2, 2]
    assert barrier.generation == 3


def test_barrier_records_wait_times():
    env = Environment()
    barrier = Barrier(env, parties=2)

    def worker(delay):
        yield env.timeout(delay)
        yield barrier.wait()

    env.process(worker(2.0))
    env.process(worker(8.0))
    env.run()
    assert sorted(barrier.wait_times) == [0.0, 6.0]
    assert barrier.release_times == [8.0]


def test_barrier_n_waiting():
    env = Environment()
    barrier = Barrier(env, parties=3)
    counts = []

    def worker(delay):
        yield env.timeout(delay)
        yield barrier.wait()

    def observer():
        yield env.timeout(2.5)
        counts.append(barrier.n_waiting)

    env.process(worker(1.0))
    env.process(worker(2.0))
    env.process(worker(5.0))
    env.process(observer())
    env.run()
    assert counts == [2]


# -------------------------------------------------------------------- Gate


def test_gate_open_releases_waiters():
    env = Environment()
    gate = Gate(env)
    passed = []

    def waiter(i):
        yield gate.wait()
        passed.append((env.now, i))

    def opener():
        yield env.timeout(4.0)
        gate.open()

    env.process(waiter(0))
    env.process(waiter(1))
    env.process(opener())
    env.run()
    assert passed == [(4.0, 0), (4.0, 1)]


def test_gate_wait_while_open_is_immediate():
    env = Environment()
    gate = Gate(env, open=True)
    passed = []

    def waiter():
        yield gate.wait()
        passed.append(env.now)

    env.process(waiter())
    env.run()
    assert passed == [0.0]


def test_gate_close_blocks_new_waiters():
    env = Environment()
    gate = Gate(env, open=True)
    log = []

    def controller():
        yield env.timeout(1.0)
        gate.close()
        yield env.timeout(5.0)
        gate.open()

    def late_waiter():
        yield env.timeout(2.0)
        yield gate.wait()
        log.append(env.now)

    env.process(controller())
    env.process(late_waiter())
    env.run()
    assert log == [6.0]


def test_gate_double_open_is_idempotent():
    env = Environment()
    gate = Gate(env)
    gate.open()
    gate.open()
    assert gate.is_open


# --------------------------------------------------------- CountdownLatch


def test_latch_validation():
    env = Environment()
    with pytest.raises(ValueError):
        CountdownLatch(env, count=0)
    latch = CountdownLatch(env, count=2)
    with pytest.raises(ValueError):
        latch.count_down(0)


def test_latch_fires_at_zero():
    env = Environment()
    latch = CountdownLatch(env, count=3)
    done = []

    def waiter():
        t = yield latch.done
        done.append(t)

    def worker(delay):
        yield env.timeout(delay)
        latch.count_down()

    env.process(waiter())
    for d in (1.0, 2.0, 7.0):
        env.process(worker(d))
    env.run()
    assert done == [7.0]
    assert latch.remaining == 0


def test_latch_extra_countdowns_ignored():
    env = Environment()
    latch = CountdownLatch(env, count=1)
    latch.count_down()
    latch.count_down()  # no error, no double-fire
    env.run()
    assert latch.done.ok
