"""Tests for the pluggable event-queue backends.

The contract both backends must honor: serve ``(time, priority,
sequence)`` keys in exactly ascending order — the total order every
digest in the repository's history was produced under.  The calendar
queue's extra machinery (bucket years, the overflow rung, resizing,
rebasing) must be invisible through that interface.
"""

import random

import pytest

from repro.sim import Environment
from repro.sim.scheduler import (
    SCHEDULER_NAMES,
    CalendarEventQueue,
    HeapEventQueue,
    make_event_queue,
)


def _drain(queue):
    out = []
    while len(queue):
        out.append(queue.pop())
    return out


def _key(t, priority, seq):
    # The event slot is never compared (sequence is unique), so tests
    # can use any placeholder payload.
    return (t, priority, seq, f"ev{seq}")


class TestMakeEventQueue:
    def test_names(self):
        assert SCHEDULER_NAMES == ("heap", "calendar")
        assert isinstance(make_event_queue("heap"), HeapEventQueue)
        assert isinstance(make_event_queue("calendar"), CalendarEventQueue)

    def test_unknown_name(self):
        with pytest.raises(ValueError, match="unknown scheduler"):
            make_event_queue("fifo")


class TestCalendarBasics:
    def test_pop_empty_raises_index_error(self):
        queue = CalendarEventQueue()
        with pytest.raises(IndexError):
            queue.pop()

    def test_single_item(self):
        queue = CalendarEventQueue()
        queue.push(_key(3.5, 1, 1))
        assert len(queue) == 1
        assert queue.peek_time() == 3.5
        assert queue.pop() == _key(3.5, 1, 1)
        assert len(queue) == 0

    def test_orders_by_time(self):
        queue = CalendarEventQueue()
        for seq, t in enumerate([9.0, 1.0, 5.0, 3.0, 7.0]):
            queue.push(_key(t, 1, seq))
        assert [item[0] for item in _drain(queue)] == [
            1.0, 3.0, 5.0, 7.0, 9.0,
        ]

    def test_same_instant_ties_by_priority_then_sequence(self):
        queue = CalendarEventQueue()
        queue.push(_key(2.0, 1, 3))
        queue.push(_key(2.0, 0, 4))
        queue.push(_key(2.0, 1, 1))
        queue.push(_key(2.0, 0, 2))
        assert [(p, s) for _, p, s, _ in _drain(queue)] == [
            (0, 2), (0, 4), (1, 1), (1, 3),
        ]

    def test_peek_does_not_mutate(self):
        queue = CalendarEventQueue()
        queue.push(_key(4.0, 1, 1))
        queue.push(_key(8.0, 1, 2))
        assert queue.peek_time() == queue.peek_time() == 4.0
        queue.pop()
        assert queue.peek_time() == 8.0

    def test_peek_empty_is_inf(self):
        import math

        assert math.isinf(CalendarEventQueue().peek_time())


class TestOverflowRung:
    def test_far_future_key_lands_in_overflow(self):
        queue = CalendarEventQueue(bucket_width=1.0, n_buckets=32)
        queue.push(_key(1e6, 1, 1))
        assert queue.overflow_count == 1
        assert queue.peek_time() == 1e6

    def test_overflow_promotion_preserves_order(self):
        queue = CalendarEventQueue(bucket_width=1.0, n_buckets=32)
        # A near key inside the year and a spread of far keys beyond it.
        far = [1000.0 + 3.0 * i for i in range(20)]
        for seq, t in enumerate(far):
            queue.push(_key(t, 1, seq))
        queue.push(_key(5.0, 1, 99))
        assert queue.overflow_count == len(far)
        popped = [item[0] for item in _drain(queue)]
        assert popped == sorted([5.0] + far)

    def test_ladder_jump_over_empty_horizon(self):
        # Years between the current one and the overflow minimum are
        # skipped in one re-anchor, not scanned bucket by bucket.
        queue = CalendarEventQueue(bucket_width=1.0, n_buckets=32)
        queue.push(_key(1e9, 1, 1))
        queue.push(_key(2e9, 1, 2))
        assert queue.pop()[0] == 1e9
        assert queue.pop()[0] == 2e9

    def test_rebuild_promotes_overflow_into_new_year(self):
        # Regression test for the one way this structure could pop out
        # of order: a rebuild anchored at the overflow minimum (because
        # the calendar side was empty) must promote the rung's in-year
        # keys, or later pushes into the new year would be served ahead
        # of smaller overflow keys.
        queue = CalendarEventQueue(bucket_width=1.0, n_buckets=32)
        # Fill with enough spread to overflow, then drain low keys so a
        # shrink-rebuild fires while only far keys (in overflow) remain.
        for seq in range(80):
            queue.push(_key(float(seq * 40), 1, seq))
        out = [queue.pop()[0] for _ in range(70)]
        assert out == sorted(out)
        # Now push keys between the remaining far keys.
        remaining = 80 - 70
        base = 70 * 40.0
        queue.push(_key(base + 1.0, 1, 1000))
        queue.push(_key(base + 41.0, 1, 1001))
        final = [item[0] for item in _drain(queue)]
        assert final == sorted(final)
        assert len(final) == remaining + 2


class TestResize:
    def test_grow_on_population(self):
        queue = CalendarEventQueue(bucket_width=1.0, n_buckets=32)
        for seq in range(200):
            queue.push(_key(float(seq) * 0.25, 1, seq))
        assert queue.n_buckets > 32
        popped = [item[0] for item in _drain(queue)]
        assert popped == sorted(popped)

    def test_shrink_on_drain(self):
        queue = CalendarEventQueue(bucket_width=1.0, n_buckets=32)
        for seq in range(300):
            queue.push(_key(float(seq) * 0.5, 1, seq))
        grown = queue.n_buckets
        for _ in range(290):
            queue.pop()
        assert queue.n_buckets < grown
        assert [item[0] for item in _drain(queue)] == sorted(
            [item * 0.5 for item in range(290, 300)]
        )

    def test_width_adapts_to_spacing(self):
        queue = CalendarEventQueue(bucket_width=100.0, n_buckets=32)
        for seq in range(200):
            queue.push(_key(float(seq) * 0.01, 1, seq))
        # After a grow-rebuild the width reflects the 0.01 spacing, not
        # the 100.0 the queue was constructed with.
        assert queue.bucket_width < 1.0


class TestRebase:
    def test_push_below_year_start_rebases(self):
        queue = CalendarEventQueue(start_time=1000.0)
        queue.push(_key(1500.0, 1, 1))
        queue.push(_key(10.0, 1, 2))  # arbitrary use: before the year
        assert queue.pop()[0] == 10.0
        assert queue.pop()[0] == 1500.0

    def test_push_below_cursor_rewinds(self):
        queue = CalendarEventQueue(bucket_width=1.0, n_buckets=32)
        queue.push(_key(20.0, 1, 1))
        assert queue.pop()[0] == 20.0  # cursor now at bucket 20
        queue.push(_key(3.0, 1, 2))  # earlier bucket, same year
        assert queue.peek_time() == 3.0
        assert queue.pop()[0] == 3.0


@pytest.mark.parametrize("case", ["uniform", "bursty", "bimodal", "ties"])
def test_randomized_equivalence_with_heap(case):
    """Property test: both backends serve identical streams.

    Blessed seeded streams cover the regimes a DES produces: uniform
    arrivals, bursty same-instant clusters, bimodal near/far horizons
    (exercising the overflow rung), and heavy priority ties.
    """
    rng = random.Random(f"scheduler-{case}")
    heap = HeapEventQueue()
    calendar = CalendarEventQueue()
    now = 0.0
    seq = 0
    popped = 0
    for step in range(4000):
        do_push = popped >= seq or rng.random() < 0.55
        if do_push:
            seq += 1
            if case == "uniform":
                t = now + rng.random() * 30.0
            elif case == "bursty":
                t = now + rng.choice([0.0, 0.0, 0.5, 25.0])
            elif case == "bimodal":
                t = now + rng.choice([rng.random(), 5000.0 + rng.random()])
            else:  # ties
                t = now + float(rng.randrange(4))
            priority = rng.choice([0, 1])
            key = (t, priority, seq, None)
            heap.push(key)
            calendar.push(key)
        else:
            a = heap.pop()
            b = calendar.pop()
            assert a == b
            assert a[0] >= now
            now = a[0]
            popped += 1
    while len(heap):
        a = heap.pop()
        b = calendar.pop()
        assert a == b
    assert len(calendar) == 0


def test_cancellation_equivalence_via_resource_sim():
    """Same-instant ties plus cancellations through the real kernel.

    Processes race for a capacity-1 resource and half abandon their
    claims via AnyOf timeouts (exercising Request.cancel), under both
    backends; the finish-time records must be identical.
    """
    from repro.sim import Resource

    def run(scheduler):
        env = Environment(scheduler=scheduler)
        resource = Resource(env, capacity=1)
        log = []

        def contender(name, patience):
            req = resource.request()
            giveup = env.timeout(patience)
            result = yield req | giveup
            if req in result:
                yield env.timeout(3.0)
                resource.release(req)
                log.append((name, "served", env.now))
            else:
                req.cancel()
                log.append((name, "bailed", env.now))

        for i in range(20):
            env.process(contender(f"p{i}", float(i % 5) + 1.0))
        env.run()
        return log

    assert run("heap") == run("calendar")


@pytest.mark.parametrize("scheduler", SCHEDULER_NAMES)
def test_environment_scheduler_property(scheduler):
    env = Environment(scheduler=scheduler)
    assert env.scheduler == scheduler
    assert env.batch_timeouts is False


def test_environment_rejects_unknown_scheduler():
    with pytest.raises(ValueError, match="unknown scheduler"):
        Environment(scheduler="fifo")
