"""Property-based tests (hypothesis) for kernel invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import Barrier, Environment, Resource, Store, Tally


@given(st.lists(st.floats(min_value=0.0, max_value=1e6), min_size=1, max_size=200))
def test_clock_monotonic_under_arbitrary_timeouts(delays):
    """The simulation clock never moves backwards."""
    env = Environment()
    observed = []

    def proc(d):
        yield env.timeout(d)
        observed.append(env.now)

    for d in delays:
        env.process(proc(d))
    env.run()
    assert observed == sorted(observed)
    assert len(observed) == len(delays)


@given(
    st.integers(min_value=1, max_value=5),
    st.lists(st.floats(min_value=0.0, max_value=50.0), min_size=1, max_size=40),
)
def test_resource_never_exceeds_capacity(capacity, hold_times):
    """At no instant do more than `capacity` processes hold the resource."""
    env = Environment()
    res = Resource(env, capacity=capacity)
    overshoot = []

    def user(hold):
        with res.request() as req:
            yield req
            if res.count > capacity:
                overshoot.append(res.count)
            yield env.timeout(hold)

    for h in hold_times:
        env.process(user(h))
    env.run()
    assert not overshoot
    assert res.count == 0
    assert res.grants == len(hold_times)


@given(
    st.integers(min_value=1, max_value=6),
    st.integers(min_value=1, max_value=5),
)
def test_barrier_conservation(parties, rounds):
    """Every waiter is released exactly once per generation; release time is
    the max arrival time of its generation."""
    env = Environment()
    barrier = Barrier(env, parties=parties)
    releases = []

    def worker(i):
        for r in range(rounds):
            yield env.timeout(float((i * 7 + r * 3) % 11))
            gen = yield barrier.wait()
            releases.append(gen)

    for i in range(parties):
        env.process(worker(i))
    env.run()
    assert len(releases) == parties * rounds
    for g in range(rounds):
        assert releases.count(g) == parties
    assert len(barrier.wait_times) == parties * rounds
    assert all(w >= 0 for w in barrier.wait_times)


@given(st.lists(st.integers(min_value=0, max_value=1000), min_size=0, max_size=60))
def test_store_preserves_items_fifo(items):
    """Everything put into a Store comes out, in order."""
    env = Environment()
    store = Store(env)
    out = []

    def producer():
        for item in items:
            yield store.put(item)

    def consumer():
        for _ in range(len(items)):
            item = yield store.get()
            out.append(item)

    env.process(producer())
    env.process(consumer())
    env.run()
    assert out == items


@given(st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=1, max_size=300))
@settings(max_examples=50)
def test_tally_consistency(values):
    """Tally streaming stats agree with direct computation."""
    t = Tally()
    t.extend(values)
    assert t.count == len(values)
    assert t.total == sum(values)
    assert t.min == min(values)
    assert t.max == max(values)
    mean = sum(values) / len(values)
    assert abs(t.mean - mean) < 1e-6 * max(1.0, abs(mean))
    assert t.percentile(0) == min(values)
    assert t.percentile(100) == max(values)
    cdf = t.cdf()
    assert cdf[-1][1] == 1.0
    assert [v for v, _ in cdf] == sorted(values)


@given(st.integers(min_value=0, max_value=2**31 - 1))
@settings(max_examples=25)
def test_deterministic_simulation_replay(seed):
    """An entire mini-simulation replays identically from its seed."""
    from repro.sim import RandomStreams

    def run(seed):
        env = Environment()
        rs = RandomStreams(seed)
        res = Resource(env, capacity=2)
        trace = []

        def worker(i):
            yield env.timeout(rs.exponential(f"arrive-{i}", 5.0))
            with res.request() as req:
                yield req
                trace.append((round(env.now, 9), i))
                yield env.timeout(rs.exponential(f"hold-{i}", 3.0))

        for i in range(8):
            env.process(worker(i))
        env.run()
        return trace

    assert run(seed) == run(seed)
