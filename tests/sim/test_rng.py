"""Tests for deterministic named RNG streams."""

import pytest

from repro.sim import RandomStreams


def test_same_seed_same_stream():
    a = RandomStreams(42)
    b = RandomStreams(42)
    assert [a.exponential("x", 10.0) for _ in range(5)] == [
        b.exponential("x", 10.0) for _ in range(5)
    ]


def test_different_names_are_independent():
    rs = RandomStreams(42)
    xs = [rs.exponential("compute", 10.0) for _ in range(5)]
    rs2 = RandomStreams(42)
    # Draw from another stream first; "compute" must be unaffected.
    rs2.exponential("other", 10.0)
    ys = [rs2.exponential("compute", 10.0) for _ in range(5)]
    assert xs == ys


def test_different_seeds_differ():
    a = RandomStreams(1)
    b = RandomStreams(2)
    assert a.exponential("x", 10.0) != b.exponential("x", 10.0)


def test_exponential_zero_mean_is_zero():
    rs = RandomStreams(0)
    assert rs.exponential("x", 0.0) == 0.0


def test_exponential_negative_mean_raises():
    rs = RandomStreams(0)
    with pytest.raises(ValueError):
        rs.exponential("x", -1.0)


def test_exponential_mean_approximation():
    rs = RandomStreams(7)
    n = 20000
    total = sum(rs.exponential("m", 30.0) for _ in range(n))
    assert total / n == pytest.approx(30.0, rel=0.05)


def test_uniform_int_bounds():
    rs = RandomStreams(3)
    draws = [rs.uniform_int("u", 2, 5) for _ in range(200)]
    assert min(draws) >= 2
    assert max(draws) <= 5
    assert set(draws) == {2, 3, 4, 5}


def test_uniform_int_empty_range_raises():
    rs = RandomStreams(3)
    with pytest.raises(ValueError):
        rs.uniform_int("u", 5, 2)


def test_uniform_float_bounds():
    rs = RandomStreams(3)
    draws = [rs.uniform("f", 1.0, 2.0) for _ in range(100)]
    assert all(1.0 <= d < 2.0 for d in draws)


def test_shuffle_is_permutation_and_deterministic():
    rs1 = RandomStreams(9)
    rs2 = RandomStreams(9)
    items = list(range(20))
    s1 = rs1.shuffle("s", items)
    s2 = rs2.shuffle("s", items)
    assert s1 == s2
    assert sorted(s1) == items
    assert items == list(range(20))  # input untouched


def test_spawn_children_independent():
    parent = RandomStreams(11)
    c1 = parent.spawn("node-0")
    c2 = parent.spawn("node-1")
    assert c1.exponential("x", 5.0) != c2.exponential("x", 5.0)
    # Spawning is deterministic too.
    parent2 = RandomStreams(11)
    c1b = parent2.spawn("node-0")
    assert c1.seed == c1b.seed
