"""Tests for the CostModel."""

import pytest

from repro.machine import CostModel


def test_defaults_match_paper_disk_time():
    costs = CostModel()
    assert costs.disk_access_time == 30.0


def test_negative_cost_rejected():
    with pytest.raises(ValueError):
        CostModel(disk_access_time=-1.0)


def test_non_numeric_cost_rejected():
    with pytest.raises(TypeError):
        CostModel(block_copy_time="fast")  # type: ignore[arg-type]


def test_with_overrides():
    base = CostModel()
    fast = base.with_overrides(disk_access_time=10.0)
    assert fast.disk_access_time == 10.0
    assert fast.block_copy_time == base.block_copy_time
    assert base.disk_access_time == 30.0  # original untouched


def test_frozen():
    costs = CostModel()
    with pytest.raises(AttributeError):
        costs.disk_access_time = 5.0  # type: ignore[misc]


def test_remote_ref_scales_with_contention():
    costs = CostModel(remote_ref_time=0.2, contention_factor=0.1)
    assert costs.remote_ref(0) == pytest.approx(0.2)
    assert costs.remote_ref(10) == pytest.approx(0.2 * 2.0)


def test_remote_ref_negative_rejected():
    with pytest.raises(ValueError):
        CostModel().remote_ref(-1)
