"""Tests for Machine assembly and MachineConfig."""

import pytest

from repro.machine import (
    CostModel,
    FixedDiskModel,
    Machine,
    MachineConfig,
    RequestKind,
    SeekDiskModel,
)
from repro.sim import Environment


def test_config_defaults_match_paper():
    cfg = MachineConfig()
    assert cfg.n_nodes == 20
    assert cfg.n_disks == 20
    assert cfg.costs.disk_access_time == 30.0
    assert cfg.replicated_structures


def test_config_validation():
    with pytest.raises(ValueError):
        MachineConfig(n_nodes=0)
    with pytest.raises(ValueError):
        MachineConfig(n_disks=-1)
    with pytest.raises(ValueError):
        MachineConfig(disk_model="quantum")


def test_disk_model_factory():
    assert isinstance(MachineConfig().make_disk_model(), FixedDiskModel)
    assert isinstance(
        MachineConfig(disk_model="seek").make_disk_model(), SeekDiskModel
    )
    # Fresh state per disk: two calls give distinct objects.
    cfg = MachineConfig(disk_model="seek")
    assert cfg.make_disk_model() is not cfg.make_disk_model()


def test_machine_builds_nodes_and_disks():
    env = Environment()
    m = Machine(env, MachineConfig(n_nodes=4, n_disks=4))
    assert len(m.nodes) == 4
    assert len(m.disks) == 4
    assert m.nodes[2].disk is m.disks[2]
    assert m.n_nodes == 4 and m.n_disks == 4


def test_more_nodes_than_disks_wraps():
    env = Environment()
    m = Machine(env, MachineConfig(n_nodes=4, n_disks=2))
    assert m.nodes[0].disk is m.disks[0]
    assert m.nodes[2].disk is m.disks[0]
    assert m.nodes[3].disk is m.disks[1]


def test_aggregate_stats_empty():
    env = Environment()
    m = Machine(env, MachineConfig(n_nodes=2, n_disks=2))
    assert m.aggregate_disk_response() == 0.0
    assert m.total_blocks_served() == 0


def test_aggregate_disk_response():
    env = Environment()
    m = Machine(env, MachineConfig(n_nodes=2, n_disks=2))

    def proc(disk_idx, block):
        req = m.disk_for_block(disk_idx).submit(
            block=block, kind=RequestKind.DEMAND, node_id=0
        )
        yield req.done

    env.process(proc(0, 0))
    env.process(proc(1, 1))
    env.run()
    assert m.aggregate_disk_response() == pytest.approx(30.0)
    assert m.total_blocks_served() == 2
    assert m.aggregate_disk_utilization() == pytest.approx(1.0)
