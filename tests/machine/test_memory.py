"""Tests for the NUMA memory model."""

import pytest

from repro.machine import CostModel, MemorySystem
from repro.sim import Environment


def make_memory(replicated=True, **cost_overrides):
    env = Environment()
    costs = CostModel().with_overrides(**cost_overrides)
    return env, MemorySystem(env, costs, replicated_structures=replicated)


def test_enter_exit_tracking():
    env, mem = make_memory()
    assert mem.active == 0
    mem.enter()
    mem.enter()
    assert mem.active == 2
    mem.exit()
    assert mem.active == 1


def test_exit_without_enter_raises():
    env, mem = make_memory()
    with pytest.raises(RuntimeError):
        mem.exit()


def test_reference_time_uncontended():
    env, mem = make_memory(local_ref_time=0.05, remote_ref_time=0.2)
    mem.enter()  # one active: no *others*
    assert mem.reference_time(local_refs=2, remote_refs=3) == pytest.approx(
        2 * 0.05 + 3 * 0.2
    )


def test_reference_time_inflates_with_contention():
    env, mem = make_memory(
        local_ref_time=0.05, remote_ref_time=0.2, contention_factor=0.5
    )
    mem.enter()
    solo = mem.reference_time(remote_refs=1)
    for _ in range(4):
        mem.enter()
    crowded = mem.reference_time(remote_refs=1)
    assert crowded == pytest.approx(solo * (1 + 0.5 * 4))
    # Local references are NOT inflated in the replicated layout.
    assert mem.reference_time(local_refs=1) == pytest.approx(0.05)


def test_naive_layout_charges_everything_remote():
    env, mem = make_memory(
        replicated=False, local_ref_time=0.05, remote_ref_time=0.2
    )
    mem.enter()
    assert mem.reference_time(local_refs=4) == pytest.approx(4 * 0.2)


def test_negative_refs_rejected():
    env, mem = make_memory()
    with pytest.raises(ValueError):
        mem.reference_time(local_refs=-1)


def test_contention_multiplier():
    env, mem = make_memory(contention_factor=0.1)
    assert mem.contention_multiplier() == 1.0
    mem.enter()
    mem.enter()
    mem.enter()
    assert mem.contention_multiplier() == pytest.approx(1.2)


def test_active_series_time_weighted():
    env, mem = make_memory()

    def proc():
        mem.enter()
        yield env.timeout(10.0)
        mem.exit()
        yield env.timeout(10.0)

    env.process(proc())
    env.run()
    assert mem.active_series.time_average() == pytest.approx(0.5)
