"""Tests for Node: CPU sharing, idle accounting, overrun."""

import pytest

from repro.machine import CostModel, IdleEstimator, IdleKind, Node
from repro.sim import Environment


def make_node():
    env = Environment()
    return env, Node(env, node_id=0, costs=CostModel())


def test_acquire_release_cpu():
    env, node = make_node()
    held = []

    def proc():
        req = yield from node.acquire_cpu()
        held.append(node.cpu.count)
        node.release_cpu(req)
        held.append(node.cpu.count)

    env.process(proc())
    env.run()
    assert held == [1, 0]


def test_idle_wait_opens_and_closes_gate():
    env, node = make_node()
    states = []

    def user():
        req = yield from node.acquire_cpu()
        wake = env.timeout(10.0)
        _, req = yield from node.idle_wait(req, wake, IdleKind.SELF_IO)
        states.append(("after", node.user_idle, node.idle_kind))
        node.release_cpu(req)

    def observer():
        yield env.timeout(5.0)
        states.append(("during", node.user_idle, node.idle_kind))

    env.process(user())
    env.process(observer())
    env.run()
    assert ("during", True, IdleKind.SELF_IO) in states
    assert ("after", False, None) in states


def test_idle_wait_returns_event_value():
    env, node = make_node()
    values = []

    def user():
        req = yield from node.acquire_cpu()
        wake = env.timeout(5.0, value="block-data")
        value, req = yield from node.idle_wait(req, wake, IdleKind.REMOTE_IO)
        values.append(value)
        node.release_cpu(req)

    env.process(user())
    env.run()
    assert values == ["block-data"]


def test_idle_period_recorded_without_overrun():
    env, node = make_node()

    def user():
        req = yield from node.acquire_cpu()
        _, req = yield from node.idle_wait(
            req, env.timeout(10.0), IdleKind.SYNC
        )
        node.release_cpu(req)

    env.process(user())
    env.run()
    assert len(node.idle_periods) == 1
    p = node.idle_periods[0]
    assert p.kind is IdleKind.SYNC
    assert p.necessary == pytest.approx(10.0)
    assert p.overrun == pytest.approx(0.0)
    assert node.overruns.mean == pytest.approx(0.0)


def test_overrun_when_daemon_holds_cpu():
    """A 'daemon' that grabs the CPU during idle delays user resumption;
    the delay is recorded as overrun."""
    env, node = make_node()

    def user():
        req = yield from node.acquire_cpu()
        _, req = yield from node.idle_wait(
            req, env.timeout(10.0), IdleKind.SELF_IO
        )
        node.release_cpu(req)

    def daemon():
        yield node.idle_gate.wait()
        req = yield from node.acquire_cpu()
        yield env.timeout(14.0)  # action runs past the user's wake at t=10
        node.release_cpu(req)

    env.process(user())
    env.process(daemon())
    env.run()
    p = node.idle_periods[0]
    assert p.necessary == pytest.approx(10.0)
    assert p.overrun == pytest.approx(4.0)
    assert p.actual == pytest.approx(14.0)


def test_idle_elapsed_and_summary():
    env, node = make_node()
    elapsed = []

    def user():
        req = yield from node.acquire_cpu()
        _, req = yield from node.idle_wait(
            req, env.timeout(8.0), IdleKind.SYNC
        )
        _, req = yield from node.idle_wait(
            req, env.timeout(4.0), IdleKind.SELF_IO
        )
        node.release_cpu(req)

    def observer():
        yield env.timeout(3.0)
        elapsed.append(node.idle_elapsed())

    env.process(user())
    env.process(observer())
    env.run()
    assert elapsed == [pytest.approx(3.0)]
    summary = node.idle_summary()
    assert summary[IdleKind.SYNC].count == 1
    assert summary[IdleKind.SYNC].mean == pytest.approx(8.0)
    assert summary[IdleKind.SELF_IO].mean == pytest.approx(4.0)
    assert summary[IdleKind.REMOTE_IO].count == 0


def test_idle_elapsed_zero_when_not_idle():
    env, node = make_node()
    assert node.idle_elapsed() == 0.0
    assert node.estimated_idle_remaining() == 0.0


# ------------------------------------------------------------ IdleEstimator


def test_estimator_validation():
    with pytest.raises(ValueError):
        IdleEstimator(alpha=0.0)
    with pytest.raises(ValueError):
        IdleEstimator(alpha=1.5)


def test_estimator_first_observation():
    est = IdleEstimator(alpha=0.5)
    assert est.estimate(IdleKind.SYNC) is None
    est.observe(IdleKind.SYNC, 10.0)
    assert est.estimate(IdleKind.SYNC) == 10.0


def test_estimator_ewma():
    est = IdleEstimator(alpha=0.5)
    est.observe(IdleKind.SYNC, 10.0)
    est.observe(IdleKind.SYNC, 20.0)
    assert est.estimate(IdleKind.SYNC) == pytest.approx(15.0)


def test_estimator_remaining_optimistic_without_history():
    est = IdleEstimator()
    assert est.estimate_remaining(IdleKind.SELF_IO, 5.0) == float("inf")


def test_estimator_remaining_clamped():
    est = IdleEstimator(alpha=1.0)
    est.observe(IdleKind.SELF_IO, 30.0)
    assert est.estimate_remaining(IdleKind.SELF_IO, 10.0) == pytest.approx(20.0)
    assert est.estimate_remaining(IdleKind.SELF_IO, 50.0) == 0.0


def test_node_estimator_integration():
    env, node = make_node()

    def user():
        req = yield from node.acquire_cpu()
        for _ in range(3):
            _, req = yield from node.idle_wait(
                req, env.timeout(30.0), IdleKind.SELF_IO
            )
        node.release_cpu(req)

    env.process(user())
    env.run()
    assert node.idle_estimator.estimate(IdleKind.SELF_IO) == pytest.approx(30.0)
