"""Tests for the disk model and FIFO service."""

import pytest

from repro.analysis.invariants import InvariantViolation
from repro.machine import Disk, FixedDiskModel, RequestKind, SeekDiskModel
from repro.sim import Environment


def test_fixed_model_validation():
    with pytest.raises(ValueError):
        FixedDiskModel(access_time=0.0)


def test_single_request_takes_access_time():
    env = Environment()
    disk = Disk(env, 0, FixedDiskModel(30.0))
    done = []

    def proc():
        req = disk.submit(block=5, kind=RequestKind.DEMAND, node_id=1)
        result = yield req.done
        done.append((env.now, result.block))

    env.process(proc())
    env.run()
    assert done == [(30.0, 5)]


def test_fifo_queueing_and_response_time():
    env = Environment()
    disk = Disk(env, 0, FixedDiskModel(30.0))
    responses = []

    def proc(block):
        req = disk.submit(block=block, kind=RequestKind.DEMAND, node_id=0)
        result = yield req.done
        responses.append((result.block, result.response_time))

    for b in range(3):
        env.process(proc(b))
    env.run()
    # All enqueued at t=0; service is serialized.
    assert responses == [(0, 30.0), (1, 60.0), (2, 90.0)]
    assert disk.blocks_served == 3
    assert env.now == 90.0


def test_response_time_excludes_preenqueue_delay():
    env = Environment()
    disk = Disk(env, 0, FixedDiskModel(30.0))
    out = []

    def proc():
        yield env.timeout(100.0)
        req = disk.submit(block=0, kind=RequestKind.DEMAND, node_id=0)
        result = yield req.done
        out.append(result.response_time)

    env.process(proc())
    env.run()
    assert out == [30.0]


def test_kind_partitioned_stats():
    env = Environment()
    disk = Disk(env, 0, FixedDiskModel(10.0))

    def proc(kind):
        req = disk.submit(block=0, kind=kind, node_id=0)
        yield req.done

    env.process(proc(RequestKind.DEMAND))
    env.process(proc(RequestKind.PREFETCH))
    env.process(proc(RequestKind.PREFETCH))
    env.run()
    assert disk.demand_response.count == 1
    assert disk.prefetch_response.count == 2
    assert disk.response_times.count == 3


def test_utilization():
    env = Environment()
    disk = Disk(env, 0, FixedDiskModel(10.0))

    def proc():
        req = disk.submit(block=0, kind=RequestKind.DEMAND, node_id=0)
        yield req.done
        yield env.timeout(10.0)  # idle tail

    env.process(proc())
    env.run()
    assert disk.utilization() == pytest.approx(0.5)


def test_pending_counts_waiting_only():
    env = Environment()
    disk = Disk(env, 0, FixedDiskModel(10.0))
    observed = []

    def submitter():
        for b in range(3):
            disk.submit(block=b, kind=RequestKind.DEMAND, node_id=0)
        yield env.timeout(1.0)
        observed.append(disk.pending)

    env.process(submitter())
    env.run()
    # One in service, two waiting at t=1.
    assert observed == [2]


def test_request_properties_before_completion_raise():
    env = Environment()
    disk = Disk(env, 0, FixedDiskModel(10.0))
    req = disk.submit(block=0, kind=RequestKind.DEMAND, node_id=0)
    with pytest.raises(InvariantViolation, match="block 0"):
        _ = req.response_time
    with pytest.raises(InvariantViolation, match="node 0"):
        _ = req.service_time
    env.run()
    assert req.service_time == 10.0


def test_seek_model_head_movement():
    model = SeekDiskModel(
        blocks_per_cylinder=10,
        transfer_time=2.0,
        seek_per_cylinder=1.0,
        rotation_time=10.0,
    )
    env = Environment()
    disk = Disk(env, 0, model)

    class Dummy:
        pass

    # Direct model check: block 0 (cyl 0) then block 95 (cyl 9).
    from repro.machine.disk import DiskRequest
    from repro.sim import Event

    r1 = DiskRequest(block=0, kind=RequestKind.DEMAND, node_id=0,
                     enqueue_time=0.0, done=Event(env))
    r2 = DiskRequest(block=95, kind=RequestKind.DEMAND, node_id=0,
                     enqueue_time=0.0, done=Event(env))
    t1 = model.service_time(r1)
    t2 = model.service_time(r2)
    assert t1 == pytest.approx(2.0 + 0.0 + 5.0)
    assert t2 == pytest.approx(2.0 + 9.0 + 5.0)


def test_seek_model_validation():
    with pytest.raises(ValueError):
        SeekDiskModel(blocks_per_cylinder=0)


def test_parallel_disks_are_independent():
    env = Environment()
    disks = [Disk(env, i, FixedDiskModel(30.0)) for i in range(4)]
    finish = []

    def proc(disk):
        req = disk.submit(block=0, kind=RequestKind.DEMAND, node_id=0)
        yield req.done
        finish.append(env.now)

    for d in disks:
        env.process(proc(d))
    env.run()
    assert finish == [30.0, 30.0, 30.0, 30.0]


def test_jittered_model_validation():
    from repro.machine import JitteredDiskModel

    with pytest.raises(ValueError):
        JitteredDiskModel(mean_time=0)
    with pytest.raises(ValueError):
        JitteredDiskModel(jitter=1.0)
    with pytest.raises(ValueError):
        JitteredDiskModel(jitter=-0.1)


def test_jittered_model_bounds_and_determinism():
    from repro.machine import JitteredDiskModel
    from repro.machine.disk import DiskRequest
    from repro.sim import Event

    env = Environment()
    req = DiskRequest(block=0, kind=RequestKind.DEMAND, node_id=0,
                      enqueue_time=0.0, done=Event(env))
    a = JitteredDiskModel(mean_time=30.0, jitter=0.3, seed=7)
    b = JitteredDiskModel(mean_time=30.0, jitter=0.3, seed=7)
    times_a = [a.service_time(req) for _ in range(50)]
    times_b = [b.service_time(req) for _ in range(50)]
    assert times_a == times_b
    assert all(21.0 <= t <= 39.0 for t in times_a)
    assert len(set(round(t, 6) for t in times_a)) > 10  # actually varies


def test_jittered_model_different_seeds_differ():
    from repro.machine import JitteredDiskModel
    from repro.machine.disk import DiskRequest
    from repro.sim import Event

    env = Environment()
    req = DiskRequest(block=0, kind=RequestKind.DEMAND, node_id=0,
                      enqueue_time=0.0, done=Event(env))
    a = JitteredDiskModel(seed=1).service_time(req)
    b = JitteredDiskModel(seed=2).service_time(req)
    assert a != b
