"""Smoke tests: the runnable examples must not rot.

Each example's ``main()`` is imported and executed (the fast ones; the
two long parameter sweeps are exercised indirectly by the benchmarks).
"""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"


def load_example(name):
    spec = importlib.util.spec_from_file_location(
        f"examples_{name}", EXAMPLES_DIR / f"{name}.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


@pytest.mark.parametrize(
    "name",
    ["quickstart", "trace_analysis", "custom_policy", "pattern_detective"],
)
def test_example_runs(name, capsys):
    module = load_example(name)
    module.main()
    out = capsys.readouterr().out
    assert len(out) > 100  # produced a real report


def test_all_examples_have_main_and_docstring():
    for path in sorted(EXAMPLES_DIR.glob("*.py")):
        module = load_example(path.stem)
        assert hasattr(module, "main"), path.name
        assert module.__doc__ and len(module.__doc__) > 80, path.name
