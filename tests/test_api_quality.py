"""API-quality gates: every public item is documented and exported names
resolve."""

import importlib
import inspect

import pytest

PUBLIC_MODULES = [
    "repro",
    "repro.sim",
    "repro.machine",
    "repro.fs",
    "repro.prefetch",
    "repro.workload",
    "repro.metrics",
    "repro.experiments",
]


@pytest.mark.parametrize("module_name", PUBLIC_MODULES)
def test_module_docstring(module_name):
    module = importlib.import_module(module_name)
    assert module.__doc__ and len(module.__doc__.strip()) > 40, module_name


@pytest.mark.parametrize("module_name", PUBLIC_MODULES)
def test_all_exports_resolve(module_name):
    module = importlib.import_module(module_name)
    for name in getattr(module, "__all__", []):
        assert hasattr(module, name), f"{module_name}.{name} missing"


@pytest.mark.parametrize("module_name", PUBLIC_MODULES)
def test_public_items_documented(module_name):
    """Every class and function named in __all__ has a real docstring."""
    module = importlib.import_module(module_name)
    undocumented = []
    for name in getattr(module, "__all__", []):
        obj = getattr(module, name)
        if inspect.isclass(obj) or inspect.isfunction(obj):
            doc = inspect.getdoc(obj)
            if not doc or len(doc) < 20:
                undocumented.append(name)
    assert not undocumented, f"{module_name}: {undocumented}"


def test_public_classes_have_documented_public_methods():
    """Spot-check the core surface: public methods on the key classes
    carry docstrings."""
    from repro.fs import BlockCache
    from repro.machine import Node
    from repro.prefetch import PrefetchPolicy
    from repro.sim import Environment

    for cls in (Environment, Node, BlockCache, PrefetchPolicy):
        for name, member in inspect.getmembers(cls):
            if name.startswith("_"):
                continue
            if inspect.isfunction(member):
                assert inspect.getdoc(member), f"{cls.__name__}.{name}"


def test_version_attribute():
    import repro

    assert repro.__version__
