"""Tests for ASCII table/scatter rendering."""

import pytest

from repro.metrics import format_cell, render_scatter, render_table


def test_format_cell():
    assert format_cell(1.234) == "1.23"
    assert format_cell(1234.5) == "1234"
    assert format_cell(True) == "yes"
    assert format_cell(False) == "no"
    assert format_cell("x") == "x"
    assert format_cell(float("nan")) == "-"
    assert format_cell(7) == "7"


def test_render_table_alignment():
    out = render_table(
        ["name", "value"],
        [("a", 1.0), ("long-name", 123456.0)],
        title="T",
    )
    lines = out.splitlines()
    assert lines[0] == "T"
    # All rows have equal width.
    widths = {len(line) for line in lines[1:]}
    assert len(widths) == 1
    assert "long-name" in out
    assert "123456" in out


def test_render_table_row_width_mismatch():
    with pytest.raises(ValueError):
        render_table(["a", "b"], [(1,)])


def test_render_scatter_empty():
    assert render_scatter([]) == "(no points)"


def test_render_scatter_contains_points_and_diagonal():
    out = render_scatter(
        [(10.0, 5.0), (20.0, 10.0)], width=30, height=10, diagonal=True
    )
    assert "*" in out
    assert "." in out
    assert "y=x" in out


def test_render_scatter_degenerate_point():
    out = render_scatter([(0.0, 0.0)], width=10, height=5)
    assert "*" in out
