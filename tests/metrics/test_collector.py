"""Tests for RunMetrics derived quantities."""

import pytest

from repro.metrics import RunMetrics
from repro.sim import Environment


def make_metrics(n_nodes=2):
    return Environment(), RunMetrics(Environment(), n_nodes)


def test_empty_ratios():
    env, m = make_metrics()
    assert m.hit_ratio == 0.0
    assert m.miss_ratio == 1.0
    assert m.ready_hit_fraction == 0.0
    assert m.avg_read_time == 0.0
    assert m.total_accesses == 0


def test_hit_ratio_generous_definition():
    """Unready hits count as hits (the paper's definition)."""
    env, m = make_metrics()
    m.record_ready_hit(0)
    m.record_unready_hit(1)
    m.record_miss(0)
    m.record_miss(1)
    assert m.total_accesses == 4
    assert m.hit_ratio == 0.5
    assert m.ready_hit_fraction == 0.25
    assert m.unready_hit_fraction == 0.25
    assert m.blocks_demand_fetched == 2


def test_per_node_counters():
    env, m = make_metrics()
    m.record_ready_hit(0)
    m.record_ready_hit(0)
    m.record_miss(1)
    assert m.hits_ready_by_node == [2, 0]
    assert m.misses_by_node == [0, 1]


def test_read_time_tracking():
    env, m = make_metrics()
    m.record_read(0, 10.0)
    m.record_read(1, 30.0)
    assert m.avg_read_time == 20.0
    assert m.per_node_mean_read_times() == [10.0, 30.0]


def test_benefit_imbalance():
    env, m = make_metrics()
    m.record_read(0, 10.0)
    m.record_read(1, 30.0)
    # (30 - 10) / 20 = 1.0
    assert m.benefit_imbalance() == pytest.approx(1.0)


def test_benefit_imbalance_even():
    env, m = make_metrics()
    m.record_read(0, 10.0)
    m.record_read(1, 10.0)
    assert m.benefit_imbalance() == 0.0


def test_prefetch_action_partitioning():
    env, m = make_metrics()
    m.record_prefetch_action(3.0, "success")
    m.record_prefetch_action(1.0, "no_buffer")
    m.record_prefetch_action(1.0, "budget_full")
    assert m.prefetch_action_times.count == 1
    assert m.failed_action_times.count == 2
    assert m.prefetch_outcomes == {
        "success": 1, "no_buffer": 1, "budget_full": 1,
    }


def test_total_time_requires_run_markers():
    env = Environment()
    m = RunMetrics(env, 1)
    with pytest.raises(RuntimeError):
        _ = m.total_time
    m.begin_run()

    def advance():
        yield env.timeout(100.0)

    env.process(advance())
    env.run()
    m.end_run()
    assert m.total_time == 100.0


def test_total_fetches():
    env, m = make_metrics()
    m.record_miss(0)
    m.record_prefetch_issued()
    m.record_prefetch_issued()
    assert m.total_fetches == 3


def test_avg_hit_wait_all_hits_definition():
    """The paper's definition: zeros for ready hits are included."""
    env, m = make_metrics()
    m.record_ready_hit(0)
    m.record_ready_hit(0)
    m.record_ready_hit(1)
    m.record_unready_hit(1)
    m.record_hit_wait(20.0)
    # Unready-only mean is 20; all-hits mean is 20/4 = 5.
    assert m.avg_hit_wait == 20.0
    assert m.avg_hit_wait_all_hits == pytest.approx(5.0)


def test_avg_hit_wait_all_hits_empty():
    env, m = make_metrics()
    assert m.avg_hit_wait_all_hits == 0.0
    m.record_miss(0)
    assert m.avg_hit_wait_all_hits == 0.0
