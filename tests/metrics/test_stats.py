"""Tests for statistics helpers."""

import pytest

from repro.metrics import (
    cdf_points,
    fraction_below,
    median,
    pearson_r,
    percent_reduction,
    summarize,
)


def test_percent_reduction():
    assert percent_reduction(100.0, 50.0) == 50.0
    assert percent_reduction(100.0, 120.0) == -20.0
    assert percent_reduction(0.0, 10.0) == 0.0
    assert percent_reduction(10.0, 10.0) == 0.0


def test_cdf_points():
    assert cdf_points([3.0, 1.0, 2.0]) == [
        (1.0, pytest.approx(1 / 3)),
        (2.0, pytest.approx(2 / 3)),
        (3.0, 1.0),
    ]
    assert cdf_points([]) == []


def test_fraction_below():
    assert fraction_below([1, 2, 3, 4], 3) == 0.5
    assert fraction_below([], 3) == 0.0
    assert fraction_below([5, 6], 3) == 0.0


def test_median():
    assert median([1.0, 2.0, 100.0]) == 2.0
    assert median([1.0, 2.0]) == 1.5
    assert median([]) == 0.0


def test_pearson_r_perfect():
    assert pearson_r([1, 2, 3], [2, 4, 6]) == pytest.approx(1.0)
    assert pearson_r([1, 2, 3], [6, 4, 2]) == pytest.approx(-1.0)


def test_pearson_r_degenerate():
    assert pearson_r([1, 1, 1], [1, 2, 3]) == 0.0
    assert pearson_r([1], [2]) == 0.0
    with pytest.raises(ValueError):
        pearson_r([1, 2], [1])


def test_summarize():
    s = summarize([1.0, 2.0, 3.0])
    assert s == {
        "count": 3, "min": 1.0, "median": 2.0, "mean": 2.0, "max": 3.0,
    }
    assert summarize([])["count"] == 0
