"""Write-measure rows in paired reports.

The satellite contract: read-only reports stay byte-identical to their
pre-write-path form (no write rows at all), while any run that wrote
gets the :data:`~repro.metrics.report.WRITE_MEASURES` block appended.
"""

from repro.experiments import ExperimentConfig, run_pair
from repro.metrics.report import (
    PAIRED_MEASURES,
    WRITE_MEASURES,
    paired_measure_rows,
    render_table,
    write_measure_rows,
)


def small_pair(pattern):
    return run_pair(
        ExperimentConfig(
            pattern=pattern,
            sync_style="none",
            n_nodes=4,
            n_disks=4,
            file_blocks=160,
            total_reads=160,
            record_trace=False,
        )
    )


def test_read_only_report_has_no_write_rows():
    pf, base = small_pair("lfp")
    rows = paired_measure_rows(base, pf)
    assert len(rows) == len(PAIRED_MEASURES)
    labels = {label for label, _, _ in rows}
    assert not labels & {label for label, _ in WRITE_MEASURES}


def test_rw_report_appends_write_rows():
    pf, base = small_pair("lfp-rw")
    rows = paired_measure_rows(base, pf)
    assert len(rows) == len(PAIRED_MEASURES) + len(WRITE_MEASURES)
    by_label = {label: (b, p) for label, b, p in rows}
    b, p = by_label["total writes"]
    assert b > 0 and p > 0
    b, p = by_label["flushes"]
    assert b > 0 and p > 0
    # The rows render through the shared table path.
    table = render_table(
        ("measure", "no-prefetch", "prefetch"), rows
    )
    assert "dirty peak (buffers)" in table


def test_write_measure_rows_helper_matches_attributes():
    pf, base = small_pair("wstream")
    rows = write_measure_rows(base, pf)
    assert [label for label, _, _ in rows] == [
        label for label, _ in WRITE_MEASURES
    ]
    by_label = {label: (b, p) for label, b, p in rows}
    assert by_label["total writes"] == (
        base.total_writes,
        pf.total_writes,
    )
    assert by_label["throttle stall time (ms)"] == (
        base.throttle_stall_time,
        pf.throttle_stall_time,
    )
