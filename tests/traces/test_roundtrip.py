"""Round-trip fidelity: record a run, replay it, get the same run back.

The acceptance bar from the issue: replaying a recorded trace of any
paper pattern with the same seed and prefetching off reproduces the
per-node block sequence *exactly*, the hit ratio exactly, and total time
within 1%; and a replayed run passes the determinism audit.
"""

import pytest

from repro.experiments.config import ExperimentConfig
from repro.traces import (
    ReplayTrace,
    record_run,
    replay_config,
    replay_pair,
    replay_twice_and_diff,
    run_replay,
)

SMALL = dict(n_nodes=4, n_disks=4, file_blocks=400, total_reads=400, seed=11)


def small_config(pattern, sync="none", **kw):
    return ExperimentConfig(
        pattern=pattern, sync_style=sync, prefetch=False, **{**SMALL, **kw}
    )


def per_node_blocks(result):
    out = {}
    for rec in result.trace.records:
        out.setdefault(rec.node, []).append(rec.block)
    return out


@pytest.mark.parametrize(
    "pattern,sync",
    [
        ("gw", "none"),
        ("gfp", "portion"),
        ("grp", "none"),
        ("lw", "per-proc"),
        ("lfp", "total"),
        ("lfp", "portion"),
        ("lrp", "none"),
    ],
)
def test_record_replay_fidelity(pattern, sync):
    config = small_config(pattern, sync)
    original, trace = record_run(config)
    replayed = run_replay(trace, replay_config(trace, config))

    assert per_node_blocks(replayed) == per_node_blocks(original)
    assert replayed.hit_ratio == original.hit_ratio
    assert replayed.total_time == pytest.approx(
        original.total_time, rel=0.01
    )


def test_recording_does_not_perturb_the_run():
    """A recorded run and a bare run of the same config are identical."""
    from repro.experiments.runner import run_experiment

    config = small_config("gfp", "portion")
    bare = run_experiment(config)
    recorded, _ = record_run(config)
    assert recorded.total_time == bare.total_time
    assert per_node_blocks(recorded) == per_node_blocks(bare)


def test_replay_survives_disk_roundtrip(tmp_path):
    config = small_config("lfp")
    original, trace = record_run(config)
    path = tmp_path / "t.jsonl"
    trace.save(path)
    replayed = run_replay(
        ReplayTrace.load(path), replay_config(trace, config)
    )
    assert replayed.total_time == pytest.approx(
        original.total_time, rel=0.01
    )
    assert per_node_blocks(replayed) == per_node_blocks(original)


def test_replay_with_prefetch_is_emergent():
    """Prefetching over a replayed workload behaves like the live run."""
    config = small_config("gfp", "portion")
    _, trace = record_run(config)
    pf, base = replay_pair(trace, replay_config(trace, config))
    assert base.hit_ratio == 0.0
    assert pf.hit_ratio > 0.5
    assert pf.total_time < base.total_time
    assert pf.blocks_prefetched > 0


def test_replay_passes_determinism_audit():
    config = small_config("lw", "per-proc")
    _, trace = record_run(config)
    report = replay_twice_and_diff(
        trace, replay_config(trace, config), sweep_interval=None
    )
    assert report.identical


def test_replay_rejects_node_count_mismatch():
    from repro.fs.trace import TraceFormatError

    config = small_config("gw")
    _, trace = record_run(config)
    bad = replay_config(trace, config).with_overrides(n_nodes=8)
    with pytest.raises(TraceFormatError, match="nodes"):
        run_replay(trace, bad)


def test_recorded_trace_carries_provenance():
    config = small_config("gfp", "portion")
    result, trace = record_run(config)
    assert trace.meta.source == "recorded"
    assert trace.meta.seed == config.seed
    assert trace.meta.sync_style == "portion"
    assert len(trace) == result.total_accesses
    # Observed outcomes and latencies travel along for offline analysis.
    assert all(r.outcome in ("ready", "unready", "miss") for r in trace)
    assert all(r.latency >= 0 for r in trace)
    assert all(r.time >= 0 for r in trace)
