"""Replay-trace format: persistence, strictness, validation."""

import json

import pytest

from repro.fs.trace import TraceFormatError
from repro.traces import (
    REPLAY_TRACE_VERSION,
    ReplayRecord,
    ReplayTrace,
    TraceMeta,
)


def small_trace():
    meta = TraceMeta(workload="unit", n_nodes=2, file_blocks=10)
    records = [
        ReplayRecord(node=0, block=3, compute=1.5, portion=0),
        ReplayRecord(node=1, block=7, compute=0.0, portion=0, sync_joins=1),
        ReplayRecord(node=0, block=4, compute=2.0, portion=1),
    ]
    return ReplayTrace(meta, records)


def test_save_load_roundtrip(tmp_path):
    trace = small_trace()
    path = tmp_path / "t.jsonl"
    trace.save(path)
    back = ReplayTrace.load(path)
    assert back.meta == trace.meta
    assert back.records == trace.records


def test_save_writes_versioned_header(tmp_path):
    path = tmp_path / "t.jsonl"
    small_trace().save(path)
    header = json.loads(path.read_text().splitlines()[0])
    assert header["format"] == "rapid-transit-trace"
    assert header["kind"] == "replay"
    assert header["version"] == REPLAY_TRACE_VERSION
    assert header["meta"]["workload"] == "unit"


def test_load_tolerates_blank_lines(tmp_path):
    path = tmp_path / "t.jsonl"
    small_trace().save(path)
    lines = path.read_text().splitlines()
    lines.insert(1, "")
    lines.append("   ")
    lines.append("")
    path.write_text("\n".join(lines) + "\n")
    assert len(ReplayTrace.load(path)) == 3


def test_load_requires_header(tmp_path):
    path = tmp_path / "t.jsonl"
    path.write_text('{"node":0,"block":1}\n')
    with pytest.raises(TraceFormatError, match="header"):
        ReplayTrace.load(path)


def test_load_rejects_access_trace(tmp_path):
    path = tmp_path / "t.jsonl"
    path.write_text(
        '{"format":"rapid-transit-trace","kind":"access","version":1}\n'
    )
    with pytest.raises(TraceFormatError, match="expected 'replay'"):
        ReplayTrace.load(path)


def test_load_rejects_future_version(tmp_path):
    path = tmp_path / "t.jsonl"
    path.write_text(
        '{"format":"rapid-transit-trace","kind":"replay","version":99,'
        '"meta":{"workload":"x","n_nodes":1,"file_blocks":1}}\n'
    )
    with pytest.raises(TraceFormatError, match="version"):
        ReplayTrace.load(path)


def test_load_rejects_unknown_record_field(tmp_path):
    trace = small_trace()
    path = tmp_path / "t.jsonl"
    trace.save(path)
    with path.open("a") as fh:
        fh.write('{"node":0,"block":1,"bogus":3}\n')
    with pytest.raises(TraceFormatError) as err:
        ReplayTrace.load(path)
    assert "bogus" in str(err.value)
    assert ":5:" in str(err.value)  # header + 3 records + bad line


def test_load_rejects_missing_required_field(tmp_path):
    trace = small_trace()
    path = tmp_path / "t.jsonl"
    trace.save(path)
    with path.open("a") as fh:
        fh.write('{"node":0}\n')
    with pytest.raises(TraceFormatError, match="block"):
        ReplayTrace.load(path)


def test_load_rejects_unknown_meta_field(tmp_path):
    path = tmp_path / "t.jsonl"
    path.write_text(
        '{"format":"rapid-transit-trace","kind":"replay","version":1,'
        '"meta":{"workload":"x","n_nodes":1,"file_blocks":1,"zap":2}}\n'
        '{"node":0,"block":0}\n'
    )
    with pytest.raises(TraceFormatError, match="zap"):
        ReplayTrace.load(path)


def test_load_empty_file(tmp_path):
    path = tmp_path / "t.jsonl"
    path.write_text("\n\n")
    with pytest.raises(TraceFormatError, match="empty"):
        ReplayTrace.load(path)


def test_validate_node_out_of_range():
    meta = TraceMeta(workload="x", n_nodes=1, file_blocks=10)
    trace = ReplayTrace(meta, [ReplayRecord(node=5, block=0)])
    with pytest.raises(TraceFormatError, match="node 5"):
        trace.validate()


def test_validate_block_out_of_range():
    meta = TraceMeta(workload="x", n_nodes=1, file_blocks=10)
    trace = ReplayTrace(meta, [ReplayRecord(node=0, block=10)])
    with pytest.raises(TraceFormatError, match="block 10"):
        trace.validate()


def test_validate_negative_compute():
    meta = TraceMeta(workload="x", n_nodes=1, file_blocks=10)
    trace = ReplayTrace(meta, [ReplayRecord(node=0, block=0, compute=-1.0)])
    with pytest.raises(TraceFormatError, match="compute"):
        trace.validate()


def test_validate_decreasing_portions():
    meta = TraceMeta(workload="x", n_nodes=1, file_blocks=10)
    trace = ReplayTrace(
        meta,
        [
            ReplayRecord(node=0, block=0, portion=2),
            ReplayRecord(node=0, block=1, portion=1),
        ],
    )
    with pytest.raises(TraceFormatError, match="portion"):
        trace.validate()


def test_validate_empty_trace():
    meta = TraceMeta(workload="x", n_nodes=1, file_blocks=10)
    with pytest.raises(TraceFormatError, match="no records"):
        ReplayTrace(meta, []).validate()


def test_meta_rejects_bad_source():
    with pytest.raises(TraceFormatError, match="source"):
        TraceMeta(workload="x", n_nodes=1, file_blocks=1, source="dreamt")


def test_timelines_and_pattern():
    trace = small_trace()
    timelines = trace.timelines()
    assert [r.block for r in timelines[0]] == [3, 4]
    assert [r.block for r in timelines[1]] == [7]
    pattern = trace.to_pattern()
    assert pattern.scope == "local"
    assert pattern.name == "trace:unit"
    assert list(pattern.strings[0]) == [3, 4]
    assert list(pattern.portions[0]) == [0, 1]


def test_stats_shape():
    stats = small_trace().stats()
    assert stats["n_records"] == 3
    assert stats["reads_per_node"] == [2, 1]
    assert stats["sync_joins"] == 1
    assert stats["compute_total"] == pytest.approx(3.5)
    assert stats["sequentiality"] == pytest.approx(1.0)  # 3 -> 4
