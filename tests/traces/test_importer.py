"""CSV importer: normalization, derivation, and rejection paths."""

import pytest

from repro.fs.trace import TraceFormatError
from repro.traces import import_csv_trace, run_replay


def write(tmp_path, text, name="trace.csv"):
    path = tmp_path / name
    path.write_text(text)
    return path


def test_basic_import(tmp_path):
    path = write(
        tmp_path,
        "time,node,block,compute,portion\n"
        "0.0,7,10,3.0,0\n"
        "4.0,7,11,2.0,0\n"
        "1.0,9,50,1.0,0\n",
    )
    trace = import_csv_trace(path, workload="ext")
    assert trace.meta.workload == "ext"
    assert trace.meta.source == "imported"
    assert trace.meta.n_nodes == 2
    assert trace.meta.file_blocks == 51
    # Arbitrary node ids remapped densely, first-appearance order.
    assert trace.meta.extra["node_map"] == {"7": 0, "9": 1}
    timelines = trace.timelines()
    assert [r.block for r in timelines[0]] == [10, 11]
    assert [r.compute for r in timelines[0]] == [3.0, 2.0]


def test_out_of_order_timestamps_are_sorted(tmp_path):
    path = write(
        tmp_path,
        "time,node,block\n"
        "9.0,a,3\n"
        "1.0,a,1\n"
        "5.0,a,2\n",
    )
    trace = import_csv_trace(path)
    assert [r.block for r in trace.timelines()[0]] == [1, 2, 3]
    assert trace.meta.extra["sorted"] is True


def test_compute_derived_from_inter_arrival(tmp_path):
    path = write(
        tmp_path,
        "time,node,block\n"
        "0.0,a,1\n"
        "10.0,a,2\n"
        "25.0,a,3\n",
    )
    trace = import_csv_trace(path)
    # Gap to the next read becomes this read's think time; last is 0.
    assert [r.compute for r in trace.timelines()[0]] == [10.0, 15.0, 0.0]
    assert trace.meta.extra["compute_derived"] is True


def test_portions_derived_from_sequential_runs(tmp_path):
    path = write(
        tmp_path,
        "time,node,block\n"
        "0,a,5\n1,a,6\n2,a,7\n3,a,90\n4,a,91\n5,a,3\n",
    )
    trace = import_csv_trace(path)
    assert [r.portion for r in trace.timelines()[0]] == [0, 0, 0, 1, 1, 2]


def test_unknown_column_rejected(tmp_path):
    path = write(tmp_path, "time,node,block,vibes\n0,a,1,9\n")
    with pytest.raises(TraceFormatError, match="vibes"):
        import_csv_trace(path)


def test_missing_column_rejected(tmp_path):
    path = write(tmp_path, "time,node\n0,a\n")
    with pytest.raises(TraceFormatError, match="block"):
        import_csv_trace(path)


def test_bad_number_names_line(tmp_path):
    path = write(tmp_path, "time,node,block\n0,a,1\nnope,a,2\n")
    with pytest.raises(TraceFormatError, match=":3:"):
        import_csv_trace(path)


def test_negative_block_rejected(tmp_path):
    path = write(tmp_path, "time,node,block\n0,a,-4\n")
    with pytest.raises(TraceFormatError, match="negative block"):
        import_csv_trace(path)


def test_ragged_row_rejected(tmp_path):
    path = write(tmp_path, "time,node,block\n0,a\n")
    with pytest.raises(TraceFormatError, match="expected 3 fields"):
        import_csv_trace(path)


def test_empty_and_headerless_files(tmp_path):
    with pytest.raises(TraceFormatError, match="no header"):
        import_csv_trace(write(tmp_path, "", name="empty.csv"))
    with pytest.raises(TraceFormatError, match="no data rows"):
        import_csv_trace(write(tmp_path, "time,node,block\n\n"))


def test_declared_file_blocks_must_cover(tmp_path):
    path = write(tmp_path, "time,node,block\n0,a,99\n")
    with pytest.raises(TraceFormatError, match="outside"):
        import_csv_trace(path, file_blocks=50)
    trace = import_csv_trace(path, file_blocks=200)
    assert trace.meta.file_blocks == 200


def test_blank_lines_tolerated(tmp_path):
    path = write(tmp_path, "time,node,block\n\n0,a,1\n\n1,a,2\n")
    assert len(import_csv_trace(path)) == 2


def test_imported_trace_replays(tmp_path):
    path = write(
        tmp_path,
        "time,node,block\n"
        "0.0,a,0\n10.0,a,1\n20.0,a,2\n"
        "0.0,b,10\n10.0,b,11\n20.0,b,12\n",
    )
    trace = import_csv_trace(path)
    result = run_replay(trace)
    assert result.total_accesses == 6
