"""Synthetic generators: seed stability, structure, end-to-end replay."""

import pytest

from repro.traces import (
    GENERATOR_NAMES,
    make_synthetic_trace,
    replay_pair,
)

SMALL = dict(n_nodes=4, file_blocks=200, reads_per_node=30)


@pytest.mark.parametrize("kind", GENERATOR_NAMES)
def test_seed_stability(kind):
    a = make_synthetic_trace(kind, seed=3, **SMALL)
    b = make_synthetic_trace(kind, seed=3, **SMALL)
    c = make_synthetic_trace(kind, seed=4, **SMALL)
    assert a.records == b.records
    assert a.meta == b.meta
    assert a.records != c.records


@pytest.mark.parametrize("kind", GENERATOR_NAMES)
def test_structure_is_valid(kind):
    trace = make_synthetic_trace(kind, seed=5, sync_every=10, **SMALL)
    trace.validate()  # raises on any structural violation
    timelines = trace.timelines()
    assert len(timelines) == SMALL["n_nodes"]
    assert all(len(t) == SMALL["reads_per_node"] for t in timelines)
    # sync_every=10 over 30 reads -> 3 barrier visits per node
    assert trace.stats()["sync_joins"] == 3 * SMALL["n_nodes"]
    assert trace.meta.source == "synthetic"
    assert trace.meta.sync_style == "per-proc"


@pytest.mark.parametrize("kind", GENERATOR_NAMES)
def test_replays_end_to_end(kind):
    trace = make_synthetic_trace(kind, seed=2, **SMALL)
    pf, base = replay_pair(trace)
    assert pf.total_accesses == len(trace)
    assert base.total_accesses == len(trace)
    assert pf.total_time > 0 and base.total_time > 0


def test_bursty_benefits_from_prefetch_but_skewed_does_not():
    """The generators land where they were designed to: sequential bursts
    are prefetchable, pure hot-block skew is not."""
    bursty = make_synthetic_trace("bursty", seed=2, **SMALL)
    skewed = make_synthetic_trace("skewed", seed=2, **SMALL)
    b_pf, b_base = replay_pair(bursty)
    s_pf, s_base = replay_pair(skewed)
    bursty_gain = (b_base.total_time - b_pf.total_time) / b_base.total_time
    skewed_gain = (s_base.total_time - s_pf.total_time) / s_base.total_time
    assert bursty_gain > skewed_gain


def test_phased_alternates_sequentiality():
    trace = make_synthetic_trace("phased", seed=7, **SMALL)
    # Sequential phases give a mid-range successor fraction: clearly
    # above pure random, clearly below pure sequential.
    frac = trace.stats()["sequentiality"]
    assert 0.2 < frac < 0.8


def test_parameter_validation():
    with pytest.raises(ValueError, match="unknown generator"):
        make_synthetic_trace("smooth", n_nodes=2)
    with pytest.raises(ValueError, match="n_nodes"):
        make_synthetic_trace("bursty", n_nodes=0)
    with pytest.raises(ValueError, match="sync_every"):
        make_synthetic_trace("bursty", n_nodes=2, sync_every=-1)
