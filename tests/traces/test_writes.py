"""Write records in replay traces: format v2, synthesis, and replay.

Covers the three preservation-sensitive properties of adding ``op`` to
the trace format: old (v1) traces still load as pure reads, a v1 header
cannot smuggle write records in, and a generator asked for zero writes
draws zero random numbers (so pre-write-era synthetic traces reproduce
bit-identically).
"""

import json

import pytest

from repro.fs.trace import TraceFormatError
from repro.traces import (
    ReplayRecord,
    ReplayTrace,
    TraceMeta,
    make_synthetic_trace,
    replay_pair,
)

SMALL = dict(n_nodes=4, file_blocks=200, reads_per_node=30)


def rw_trace():
    meta = TraceMeta(workload="unit-rw", n_nodes=2, file_blocks=10)
    records = [
        ReplayRecord(node=0, block=3, compute=1.5, portion=0),
        ReplayRecord(node=0, block=4, compute=0.5, portion=0, op="w"),
        ReplayRecord(node=1, block=7, compute=0.0, portion=0, op="w"),
        ReplayRecord(node=1, block=8, compute=2.0, portion=0),
    ]
    return ReplayTrace(meta, records)


# --------------------------------------------------------------- format


def test_op_defaults_to_read():
    rec = ReplayRecord(node=0, block=1, compute=0.0, portion=0)
    assert rec.op == "r"


def test_unknown_op_rejected():
    with pytest.raises(TraceFormatError, match="op"):
        ReplayTrace(
            TraceMeta(workload="bad", n_nodes=1, file_blocks=10),
            [ReplayRecord(node=0, block=1, compute=0.0, portion=0, op="x")],
        ).validate()


def test_rw_roundtrip_preserves_ops(tmp_path):
    trace = rw_trace()
    path = tmp_path / "rw.jsonl"
    trace.save(path)
    back = ReplayTrace.load(path)
    assert back.records == trace.records
    assert [r.op for r in back.records] == ["r", "w", "w", "r"]
    assert back.stats()["n_writes"] == 2


def test_v1_trace_loads_as_pure_reads(tmp_path):
    """Pre-write-era traces carry no ``op`` field; every record must
    come back as a read."""
    path = tmp_path / "v1.jsonl"
    rw_trace().save(path)
    lines = path.read_text().splitlines()
    header = json.loads(lines[0])
    header["version"] = 1
    body = []
    for line in lines[1:]:
        rec = json.loads(line)
        rec.pop("op", None)
        body.append(json.dumps(rec))
    path.write_text("\n".join([json.dumps(header)] + body) + "\n")
    back = ReplayTrace.load(path)
    assert all(r.op == "r" for r in back.records)
    assert back.stats()["n_writes"] == 0


def test_v1_header_cannot_carry_write_records(tmp_path):
    """A v1 header with an op="w" record is a corrupt or mislabelled
    file, not a format we silently accept."""
    path = tmp_path / "bad.jsonl"
    rw_trace().save(path)
    lines = path.read_text().splitlines()
    header = json.loads(lines[0])
    header["version"] = 1
    path.write_text("\n".join([json.dumps(header)] + lines[1:]) + "\n")
    with pytest.raises(TraceFormatError, match="version 2"):
        ReplayTrace.load(path)


def test_to_pattern_carries_write_ops():
    pattern = rw_trace().to_pattern()
    assert pattern.has_writes
    assert pattern.total_writes == 2
    read_only = ReplayTrace(
        TraceMeta(workload="ro", n_nodes=1, file_blocks=10),
        [ReplayRecord(node=0, block=1, compute=0.0, portion=0)],
    ).to_pattern()
    assert not read_only.has_writes


# ------------------------------------------------------------ synthesis


def test_write_fraction_zero_is_the_default_and_draws_nothing():
    """wf=0 must not merely produce zero writes — it must consume zero
    RNG draws, so read-only synthesis is bit-identical to the
    pre-write-era generator."""
    plain = make_synthetic_trace("bursty", seed=3, **SMALL)
    explicit = make_synthetic_trace(
        "bursty", seed=3, write_fraction=0.0, **SMALL
    )
    assert plain.records == explicit.records
    assert "write_fraction" not in plain.meta.extra["params"]
    assert all(r.op == "r" for r in plain.records)


def test_write_fraction_marks_roughly_that_many_writes():
    trace = make_synthetic_trace(
        "bursty", seed=3, write_fraction=0.3, **SMALL
    )
    trace.validate()
    n = len(trace)
    n_writes = trace.stats()["n_writes"]
    assert 0.15 * n < n_writes < 0.45 * n
    assert trace.meta.extra["params"]["write_fraction"] == 0.3
    # The read-side structure (blocks, computes) is untouched: writes
    # are an overlay, drawn from a dedicated RNG stream.
    plain = make_synthetic_trace("bursty", seed=3, **SMALL)
    assert [r.block for r in trace.records] == [
        r.block for r in plain.records
    ]
    assert [r.compute for r in trace.records] == [
        r.compute for r in plain.records
    ]


def test_write_fraction_is_seed_stable():
    a = make_synthetic_trace("mixed", seed=9, write_fraction=0.5, **SMALL)
    b = make_synthetic_trace("mixed", seed=9, write_fraction=0.5, **SMALL)
    assert a.records == b.records


def test_write_fraction_validation():
    with pytest.raises(ValueError, match="write_fraction"):
        make_synthetic_trace("bursty", seed=1, write_fraction=1.5, **SMALL)
    with pytest.raises(ValueError, match="write_fraction"):
        make_synthetic_trace("bursty", seed=1, write_fraction=-0.1, **SMALL)


# --------------------------------------------------------------- replay


def test_rw_trace_replays_through_the_write_path():
    trace = make_synthetic_trace(
        "bursty", seed=3, write_fraction=0.3, **SMALL
    )
    _, result = replay_pair(trace)
    assert result.total_writes == trace.stats()["n_writes"]
    assert result.flush_count > 0
    assert result.dirty_peak > 0
