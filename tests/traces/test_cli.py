"""The ``rapid-transit trace`` subcommand group, end to end."""

import pytest

from repro.cli import main

RECORD_ARGS = [
    "trace", "record", "--pattern", "gfp", "--sync", "portion",
    "--no-prefetch", "--nodes", "4", "--disks", "4",
    "--file-blocks", "200", "--reads", "200", "--seed", "3",
]


def test_trace_requires_subcommand():
    with pytest.raises(SystemExit):
        main(["trace"])


def test_record_then_stats_then_replay(tmp_path, capsys):
    path = tmp_path / "rec.jsonl"
    rc = main(RECORD_ARGS + ["-o", str(path)])
    assert rc == 0
    assert path.exists()
    assert "recorded 200 reads" in capsys.readouterr().out

    rc = main(["trace", "stats", str(path)])
    assert rc == 0
    out = capsys.readouterr().out
    assert "recorded 'gfp' trace" in out
    assert "200 reads" in out

    rc = main(["trace", "replay", str(path)])
    assert rc == 0
    out = capsys.readouterr().out
    assert "no-prefetch" in out
    assert "hit ratio" in out


def test_synth_then_replay_audit(tmp_path, capsys):
    path = tmp_path / "syn.jsonl"
    rc = main([
        "trace", "synth", "skewed", "-o", str(path),
        "--nodes", "4", "--file-blocks", "100", "--reads-per-node", "20",
        "--seed", "5",
    ])
    assert rc == 0
    assert "synthesized 'skewed'" in capsys.readouterr().out

    rc = main(["trace", "replay", str(path), "--audit"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "IDENTICAL" in out
    assert "replay determinism audit: PASS" in out


def test_import_then_stats(tmp_path, capsys):
    csv = tmp_path / "ext.csv"
    csv.write_text(
        "time,node,block\n5.0,a,11\n0.0,a,10\n3.0,b,50\n"
    )
    out_path = tmp_path / "imp.jsonl"
    rc = main(["trace", "import", str(csv), "-o", str(out_path)])
    assert rc == 0
    out = capsys.readouterr().out
    assert "imported 3 reads on 2 nodes" in out
    assert "re-sorted" in out

    rc = main(["trace", "stats", str(out_path)])
    assert rc == 0
    assert "imported 'imported' trace" in capsys.readouterr().out


def test_synth_rejects_unknown_kind(tmp_path):
    with pytest.raises(SystemExit):
        main(["trace", "synth", "smooth", "-o", str(tmp_path / "x.jsonl")])
