"""Proof of preservation: the write path does not perturb read-only runs.

The write subsystem (dirty buffers, flusher daemons, throttling) was
added *after* the read-only testbed reproduced the paper's figures.  Its
design promise is that every write-path branch is dead unless a pattern
actually writes: ``configure_writeback`` is only called — and daemons
only built — when ``pattern.has_writes``.  These digests were recorded
from the commit immediately *before* the write path existed; the six
read-only paper patterns must still produce bit-identical event traces,
with and without prefetching.  If one of these fails, a write-path
change leaked into the read path — fix the leak, do not re-record.

A read-write faulted cell then proves the new machinery is itself
deterministic (run-twice, diff event traces and fault schedules).
"""

import pytest

from repro.analysis.audit import run_twice_and_diff, run_with_audit
from repro.experiments import ExperimentConfig
from repro.faults import FailSlow, FaultPlan, ResiliencePolicy

#: blake2b/16 event-trace digests keyed by (pattern, prefetch on),
#: recorded before the write path existed.  Do not update these to make
#: a test pass: a digest change on a read-only pattern IS the bug.
GOLDEN_READ_ONLY_DIGESTS = {
    ("lfp", True): "24b3c33808d737a8bc7bf31d31e8ca3d",
    ("lfp", False): "5c11c8019fd60c4de8cdcf0d140295d0",
    ("lrp", True): "5db0834f7c1bfaba78ffa6e512a09e9f",
    ("lrp", False): "b6b9a17fbc4735fef5bf1b2a0aab5b08",
    ("lw", True): "ad7476a9842e594c6532f04aa4dd7ed0",
    ("lw", False): "534dbde4720dbf4a7ab76aa27ec87319",
    ("gfp", True): "357288fde080baa90822902c1c25ed1e",
    ("gfp", False): "c75e9e31c4a6e9cfe208757b0109e7e5",
    ("grp", True): "df780484c5e8af86baf01aaa6d53169b",
    ("grp", False): "b1a1786e058ca3bde071a04cff116994",
    ("gw", True): "efa47b8b529331250fdd58ef3c72916d",
    ("gw", False): "6bde6539a51dbe764e47cea82bf34d1b",
}


def _read_only_config(pattern: str, prefetch: bool) -> ExperimentConfig:
    return ExperimentConfig(
        pattern=pattern,
        sync_style="per-proc",
        prefetch=prefetch,
        policy="oracle",
        n_nodes=4,
        n_disks=4,
        file_blocks=400,
        total_reads=400,
        compute_mean=30.0,
        seed=1,
        record_trace=False,
    )


@pytest.mark.parametrize(
    "pattern,prefetch", sorted(GOLDEN_READ_ONLY_DIGESTS)
)
def test_read_only_patterns_bit_identical_to_pre_write_era(
    pattern, prefetch
):
    report = run_with_audit(_read_only_config(pattern, prefetch))
    assert report.trace_digest == GOLDEN_READ_ONLY_DIGESTS[
        (pattern, prefetch)
    ], (
        f"read-only pattern {pattern!r} (prefetch={prefetch}) no longer "
        "matches its pre-write-path event trace: the write subsystem "
        "has leaked into the read path"
    )


def test_read_only_run_arms_no_write_machinery():
    result = run_with_audit(_read_only_config("lfp", True)).result
    assert result.total_writes == 0
    assert result.flush_count == 0
    assert result.dirty_peak == 0
    assert result.throttle_stall_count == 0


def test_read_write_faulted_run_is_deterministic():
    """The full write stack — flusher daemons, throttle, retried
    writebacks under a fail-slow disk, dirty-pressure feedback into the
    adaptive policy — replays bit-for-bit."""
    config = ExperimentConfig(
        pattern="lfp-rw",
        sync_style="none",
        policy="adaptive",
        n_nodes=4,
        n_disks=4,
        file_blocks=160,
        total_reads=160,
        faults=FaultPlan(
            faults=(FailSlow(disk=0, factor=4.0, start=200.0, end=1500.0),),
            resilience=ResiliencePolicy(
                timeout=240.0,
                max_retries=40,
                backoff_base=10.0,
                backoff_max=120.0,
            ),
        ),
        record_trace=False,
    )
    report = run_twice_and_diff(config)
    assert report.identical, report.summary()
    first, second = report.first.result, report.second.result
    # The cell genuinely exercised the write machinery...
    assert first.total_writes > 0
    assert first.flush_count > 0
    # ... and the fault schedule replayed bit-for-bit.
    assert first.fault_digest == second.fault_digest


def test_write_mode_changes_the_trace_of_a_rw_run():
    """Sanity check that the preservation proof is not vacuous: on a
    pattern that *does* write, the write-path knobs do change the event
    trace."""
    base = dict(
        pattern="lfp-rw",
        sync_style="none",
        policy="oracle",
        n_nodes=4,
        n_disks=4,
        file_blocks=160,
        total_reads=160,
        record_trace=False,
    )
    back = run_with_audit(ExperimentConfig(**base, write_mode="write-back"))
    through = run_with_audit(
        ExperimentConfig(**base, write_mode="write-through")
    )
    assert back.trace_digest != through.trace_digest
    assert through.result.flush_count >= through.result.total_writes
