"""Tests for the synthetic application process."""

import pytest

from repro.sim import RandomStreams
from repro.workload import (
    ProgressTracker,
    application,
    make_pattern,
    make_sync,
)

from ..helpers import build_stack


def run_workload(pattern_name="gw", sync_style="none", n_nodes=2,
                 total_reads=10, file_blocks=10, compute_mean=0.0,
                 per_proc_k=10, seed=1):
    env, machine, file, cache, server, metrics = build_stack(
        n_nodes=n_nodes, n_disks=n_nodes, file_blocks=file_blocks
    )
    rng = RandomStreams(seed)
    pattern = make_pattern(
        pattern_name, n_nodes=n_nodes, total_reads=total_reads,
        file_blocks=file_blocks, rng=rng,
    )
    tracker = ProgressTracker(pattern, n_nodes)
    sync = make_sync(sync_style, env, n_nodes, pattern,
                     per_proc_k=per_proc_k)
    apps = [
        env.process(
            application(node, server, tracker, sync, pattern, rng,
                        compute_mean)
        )
        for node in machine.nodes
    ]
    env.run(until=env.all_of(apps))
    return env, machine, cache, metrics, tracker, sync


def test_application_consumes_all_references():
    env, machine, cache, metrics, tracker, sync = run_workload()
    assert tracker.all_done()
    assert metrics.total_accesses == 10
    cache.check_invariants()


def test_application_with_compute_takes_longer():
    env_fast, *_ = run_workload(compute_mean=0.0, seed=2)
    env_slow, *_ = run_workload(compute_mean=50.0, seed=2)
    # With compute the run must stretch well beyond the I/O-only run.
    assert env_slow.now > env_fast.now > 0


def test_per_proc_sync_produces_barrier_waits():
    env, machine, cache, metrics, tracker, sync = run_workload(
        pattern_name="lw", sync_style="per-proc", n_nodes=2,
        total_reads=20, file_blocks=100, per_proc_k=5,
    )
    # 10 reads per node, k=5: 2 barrier generations, 2 waits each.
    assert len(sync.wait_times) == 4
    assert tracker.all_done()


def test_portion_sync_local_pattern_completes():
    env, machine, cache, metrics, tracker, sync = run_workload(
        pattern_name="lfp", sync_style="portion", n_nodes=2,
        total_reads=40, file_blocks=100,
    )
    assert tracker.all_done()
    # 20 reads/node with portion length 10: 2 portions each: 4 waits.
    assert len(sync.wait_times) == 4


def test_portion_sync_random_portions_no_deadlock():
    """lrp with portion sync: unequal portion counts need departures."""
    env, machine, cache, metrics, tracker, sync = run_workload(
        pattern_name="lrp", sync_style="portion", n_nodes=4,
        total_reads=80, file_blocks=200, seed=5,
    )
    assert tracker.all_done()


def test_total_sync_global_pattern_completes():
    env, machine, cache, metrics, tracker, sync = run_workload(
        pattern_name="gw", sync_style="total", n_nodes=2,
        total_reads=20, file_blocks=20,
    )
    assert tracker.all_done()


def test_deterministic_replay():
    def run(seed):
        *_, metrics, tracker, _ = run_workload(
            pattern_name="grp", sync_style="per-proc", n_nodes=3,
            total_reads=30, file_blocks=60, compute_mean=5.0, seed=seed,
            per_proc_k=5,
        )
        return metrics.end_time, metrics.read_times.total

    assert run(9) == run(9)
    assert run(9) != run(10)


def test_reads_follow_local_string_order():
    env, machine, cache, metrics, tracker, sync = run_workload(
        pattern_name="lfp", n_nodes=2, total_reads=20, file_blocks=100,
    )
    pattern = make_pattern("lfp", n_nodes=2, total_reads=20, file_blocks=100)
    trace0 = cache.trace.by_node(0).time_sorted()
    assert [r.block for r in trace0] == [int(b) for b in pattern.strings[0]]
