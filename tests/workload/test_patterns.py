"""Tests for access-pattern generation."""

import numpy as np
import pytest

from repro.sim import RandomStreams
from repro.workload import PATTERN_NAMES, make_pattern


def rng():
    return RandomStreams(7)


def test_unknown_pattern_rejected():
    with pytest.raises(ValueError):
        make_pattern("zigzag", n_nodes=4)


def test_random_patterns_require_rng():
    with pytest.raises(ValueError):
        make_pattern("lrp", n_nodes=4)
    with pytest.raises(ValueError):
        make_pattern("grp", n_nodes=4)


def test_all_patterns_standard_sizing():
    """Paper standard: total reads 2000 over 20 nodes and 2000 blocks."""
    for name in PATTERN_NAMES:
        pattern = make_pattern(name, n_nodes=20, rng=rng())
        assert pattern.total_reads == 2000, name
        if pattern.scope == "local":
            assert pattern.n_strings == 20
            assert all(len(s) == 100 for s in pattern.strings)
        else:
            assert pattern.n_strings == 1
            assert len(pattern.strings[0]) == 2000


def test_scope_classification():
    for name, scope in [
        ("lfp", "local"), ("lrp", "local"), ("lw", "local"),
        ("gfp", "global"), ("grp", "global"), ("gw", "global"),
    ]:
        assert make_pattern(name, n_nodes=4, rng=rng()).scope == scope


def test_crossing_classification():
    for name, crosses in [
        ("lfp", True), ("lrp", False), ("lw", True),
        ("gfp", True), ("grp", False), ("gw", True),
    ]:
        assert (
            make_pattern(name, n_nodes=4, rng=rng()).crosses_portions
            is crosses
        ), name


def test_gw_reads_whole_file_once():
    pattern = make_pattern("gw", n_nodes=20, file_blocks=2000)
    s = pattern.strings[0]
    assert np.array_equal(s, np.arange(2000))
    assert np.array_equal(pattern.portions[0], np.zeros(2000))


def test_lw_everyone_reads_same_region():
    pattern = make_pattern("lw", n_nodes=4, total_reads=400, file_blocks=2000)
    for s in pattern.strings:
        assert np.array_equal(s, np.arange(100))


def test_lfp_portions_regular_and_distinct_bases():
    pattern = make_pattern(
        "lfp", n_nodes=4, total_reads=80, file_blocks=2000,
        portion_length=5, portion_stride=13,
    )
    for node, (s, p) in enumerate(zip(pattern.strings, pattern.portions)):
        assert len(s) == 20
        # Portions of length 5: ids 0,0,0,0,0,1,1,...
        assert list(p[:6]) == [0, 0, 0, 0, 0, 1]
        # Each portion is a consecutive run.
        for i in range(1, len(s)):
            if p[i] == p[i - 1]:
                assert s[i] == (s[i - 1] + 1) % 2000
    # Different nodes start at different places.
    starts = {int(s[0]) for s in pattern.strings}
    assert len(starts) == 4


def test_lrp_portions_are_sequential_runs():
    pattern = make_pattern("lrp", n_nodes=3, total_reads=300, rng=rng())
    for s, p in zip(pattern.strings, pattern.portions):
        for i in range(1, len(s)):
            if p[i] == p[i - 1]:
                assert s[i] == (s[i - 1] + 1) % pattern.file_blocks
            else:
                assert p[i] == p[i - 1] + 1


def test_grp_deterministic_from_seed():
    a = make_pattern("grp", n_nodes=4, rng=RandomStreams(5))
    b = make_pattern("grp", n_nodes=4, rng=RandomStreams(5))
    assert np.array_equal(a.strings[0], b.strings[0])
    c = make_pattern("grp", n_nodes=4, rng=RandomStreams(6))
    assert not np.array_equal(a.strings[0], c.strings[0])


def test_gfp_covers_total_reads():
    pattern = make_pattern("gfp", n_nodes=4, total_reads=500)
    assert len(pattern.strings[0]) == 500
    assert pattern.portions[0][-1] == 49  # 500 reads / 10-block portions


def test_string_for_and_portions_for():
    local = make_pattern("lfp", n_nodes=3, total_reads=30)
    assert local.string_for(2) is local.strings[2]
    glob = make_pattern("gw", n_nodes=3, total_reads=100, file_blocks=100)
    assert glob.string_for(2) is glob.strings[0]
    assert glob.portions_for(1) is glob.portions[0]


def test_validation_catches_bad_data():
    import dataclasses

    from repro.workload.patterns import AccessPattern

    with pytest.raises(ValueError):
        AccessPattern(
            name="x", scope="sideways", file_blocks=10,
            strings=[np.array([0])], portions=[np.array([0])],
            crosses_portions=True,
        )
    with pytest.raises(ValueError):
        AccessPattern(
            name="x", scope="local", file_blocks=10,
            strings=[np.array([11])], portions=[np.array([0])],
            crosses_portions=True,
        )
    with pytest.raises(ValueError):
        AccessPattern(
            name="x", scope="local", file_blocks=10,
            strings=[np.array([0, 1])], portions=[np.array([1, 0])],
            crosses_portions=True,
        )
