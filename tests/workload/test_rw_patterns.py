"""Tests for the read-write extension patterns (lfp-rw, gw-rw, wstream).

These are not paper patterns — the 1989 testbed is read-only — so they
live behind :data:`RW_PATTERN_NAMES`, separate from the six canonical
names, and every read-only pattern must materialize with ``ops=None``
(the proof-of-preservation hinge: the runner arms the write path only
when ``has_writes``).
"""

import numpy as np
import pytest

from repro.sim import RandomStreams
from repro.workload import (
    ALL_PATTERN_NAMES,
    PATTERN_NAMES,
    RW_PATTERN_NAMES,
    make_pattern,
)


def rng():
    return RandomStreams(7)


def test_name_registries_partition():
    assert set(ALL_PATTERN_NAMES) == set(PATTERN_NAMES) | set(
        RW_PATTERN_NAMES
    )
    assert not set(PATTERN_NAMES) & set(RW_PATTERN_NAMES)
    assert RW_PATTERN_NAMES == ("lfp-rw", "gw-rw", "wstream")


@pytest.mark.parametrize("name", PATTERN_NAMES)
def test_read_only_patterns_carry_no_ops(name):
    pattern = make_pattern(name, n_nodes=4, rng=rng())
    assert pattern.ops is None
    assert not pattern.has_writes
    assert pattern.total_writes == 0
    assert pattern.ops_for(0) is None


@pytest.mark.parametrize("name", RW_PATTERN_NAMES)
def test_rw_patterns_write_and_validate(name):
    pattern = make_pattern(
        name, n_nodes=4, file_blocks=400, total_reads=400
    )
    assert pattern.has_writes
    assert pattern.total_writes > 0
    assert pattern.ops is not None
    # ops arrays are parallel to the reference strings (validated in
    # __post_init__, but assert the shape contract explicitly).
    for s, o in zip(pattern.strings, pattern.ops):
        assert len(s) == len(o)
        assert set(np.unique(o)) <= {0, 1}


def test_lfp_rw_is_read_modify_write():
    pattern = make_pattern(
        "lfp-rw", n_nodes=4, file_blocks=400, total_reads=400
    )
    assert pattern.scope == "local"
    for node in range(4):
        blocks = pattern.string_for(node)
        ops = pattern.ops_for(node)
        # Each block appears as a read immediately followed by a write
        # of the same block.
        assert np.array_equal(blocks[0::2], blocks[1::2])
        assert not ops[0::2].any()
        assert ops[1::2].all()


def test_gw_rw_is_global_with_sequential_read_stream():
    pattern = make_pattern(
        "gw-rw", n_nodes=4, file_blocks=400, total_reads=300
    )
    assert pattern.scope == "global"
    blocks = pattern.string_for(0)
    ops = pattern.ops_for(0)
    reads = blocks[ops == 0]
    # The read sub-stream is still the gw sweep: strictly sequential.
    assert np.array_equal(reads, np.arange(len(reads)))
    # Every write overwrites a block just read.
    writes = blocks[ops == 1]
    assert np.isin(writes, reads).all()


def test_wstream_is_pure_writes_on_private_slices():
    pattern = make_pattern(
        "wstream", n_nodes=4, file_blocks=400, total_reads=400
    )
    assert pattern.scope == "local"
    for node in range(4):
        ops = pattern.ops_for(node)
        assert ops.all(), "wstream must be write-only"
    # Private slices: no block shared between nodes.
    slices = [set(pattern.string_for(n).tolist()) for n in range(4)]
    for i in range(4):
        for j in range(i + 1, 4):
            assert not slices[i] & slices[j]


def test_rw_pattern_reference_budget():
    """``total_reads`` budgets references (reads + writes), like the
    read-only patterns."""
    for name in ("lfp-rw", "wstream"):
        pattern = make_pattern(
            name, n_nodes=4, file_blocks=400, total_reads=400
        )
        assert pattern.total_reads == pytest.approx(400, abs=8)
