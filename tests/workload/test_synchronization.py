"""Tests for sync styles and the DynamicBarrier."""

import pytest

from repro.sim import Environment, RandomStreams
from repro.workload import (
    DynamicBarrier,
    NoSync,
    PerProcessCountSync,
    PortionSync,
    TotalCountSync,
    make_pattern,
    make_sync,
)


# --------------------------------------------------------- DynamicBarrier


def test_dynamic_barrier_validation():
    env = Environment()
    with pytest.raises(ValueError):
        DynamicBarrier(env, 0)


def test_dynamic_barrier_basic_release():
    env = Environment()
    barrier = DynamicBarrier(env, 2)
    released = []

    def worker(delay):
        yield env.timeout(delay)
        gen = yield barrier.wait()
        released.append((env.now, gen))

    env.process(worker(1.0))
    env.process(worker(4.0))
    env.run()
    assert released == [(4.0, 0), (4.0, 0)]
    assert sorted(barrier.wait_times) == [0.0, 3.0]


def test_dynamic_barrier_departure_releases_waiters():
    env = Environment()
    barrier = DynamicBarrier(env, 3)
    released = []

    def worker():
        yield barrier.wait()
        released.append(env.now)

    def quitter():
        yield env.timeout(5.0)
        barrier.depart()

    env.process(worker())
    env.process(worker())
    env.process(quitter())
    env.run()
    assert released == [5.0, 5.0]
    assert barrier.active == 2


def test_dynamic_barrier_departure_below_zero_rejected():
    env = Environment()
    barrier = DynamicBarrier(env, 1)
    barrier.depart()
    with pytest.raises(RuntimeError):
        barrier.depart()


def test_dynamic_barrier_wait_after_all_departed_rejected():
    env = Environment()
    barrier = DynamicBarrier(env, 1)
    barrier.depart()
    with pytest.raises(RuntimeError):
        barrier.wait()


# --------------------------------------------------------------- styles


def make_env_pattern(name="gw", n_nodes=4, total=40, file_blocks=40):
    env = Environment()
    pattern = make_pattern(
        name, n_nodes=n_nodes, total_reads=total, file_blocks=file_blocks,
        rng=RandomStreams(3),
    )
    return env, pattern


def test_no_sync_never_owes():
    env, pattern = make_env_pattern()
    sync = NoSync(env, 4)
    for i in range(100):
        sync.after_read(0, i, 0)
    assert not sync.owes(0)


def test_per_proc_count_owes_every_k():
    env, pattern = make_env_pattern()
    sync = PerProcessCountSync(env, 4, k=3)
    for i in range(2):
        sync.after_read(1, i, 0)
    assert not sync.owes(1)
    sync.after_read(1, 2, 0)
    assert sync.owes(1)
    sync.join(1)
    assert not sync.owes(1)
    # Other nodes unaffected.
    assert not sync.owes(0)


def test_total_count_owes_globally():
    env, pattern = make_env_pattern()
    sync = TotalCountSync(env, 4, k=5)
    for node in range(4):
        sync.after_read(node, 0, 0)
    assert not sync.owes(0)
    sync.after_read(0, 1, 0)  # 5th read in total
    for node in range(4):
        assert sync.owes(node)
    sync.join(2)
    assert not sync.owes(2)
    assert sync.owes(3)


def test_portion_sync_local():
    env, pattern = make_env_pattern("lfp", total=40)
    sync = PortionSync(env, 4, pattern)
    assert not sync.owes(0)
    sync.note_portion_complete(0)
    assert sync.owes(0)
    assert not sync.owes(1)
    sync.join(0)
    assert not sync.owes(0)


def test_portion_sync_global_in_order_completion():
    env, pattern = make_env_pattern("gfp", total=40)
    sync = PortionSync(env, 4, pattern)
    portions = pattern.portions[0]
    # Consume all refs of portion 0 (10 refs with default length 10).
    for idx in range(10):
        sync.after_read(idx % 4, idx, int(portions[idx]))
    for node in range(4):
        assert sync.owes(node)


def test_portion_sync_global_out_of_order_completion():
    """Portion 1 finishing before portion 0 does not credit an epoch."""
    env, pattern = make_env_pattern("gfp", total=40)
    sync = PortionSync(env, 4, pattern)
    portions = pattern.portions[0]
    # Consume all of portion 1 but only part of portion 0.
    for idx in range(10, 20):
        sync.after_read(0, idx, int(portions[idx]))
    assert not sync.owes(0)
    for idx in range(0, 10):
        sync.after_read(0, idx, int(portions[idx]))
    # Both portions now complete: two epochs due.
    assert sync.owes(0)
    sync.join(0)
    assert sync.owes(0)


def test_sync_validation():
    env, pattern = make_env_pattern()
    with pytest.raises(ValueError):
        PerProcessCountSync(env, 4, k=0)
    with pytest.raises(ValueError):
        TotalCountSync(env, 4, k=0)
    with pytest.raises(ValueError):
        make_sync("lockstep", env, 4, pattern)


def test_make_sync_factory():
    env, pattern = make_env_pattern()
    assert isinstance(make_sync("none", env, 4, pattern), NoSync)
    assert isinstance(
        make_sync("per-proc", env, 4, pattern), PerProcessCountSync
    )
    assert isinstance(make_sync("total", env, 4, pattern), TotalCountSync)
    assert isinstance(make_sync("portion", env, 4, pattern), PortionSync)


def test_depart_is_idempotent():
    env, pattern = make_env_pattern()
    sync = NoSync(env, 4)
    sync.depart(0)
    sync.depart(0)  # no error, no double-decrement
    assert sync.barrier.active == 3
