"""Tests for the standard workload suite definition."""

from repro.workload import (
    WorkloadSpec,
    balanced_compute_mean,
    standard_suite,
)


def test_suite_size_matches_paper_mix():
    # 6 patterns x 4 syncs x 2 intensities minus 2 excluded lw/portion cells.
    suite = standard_suite()
    assert len(suite) == 46


def test_lw_portion_excluded():
    assert not any(
        s.pattern == "lw" and s.sync_style == "portion"
        for s in standard_suite()
    )


def test_intensity_labels():
    assert WorkloadSpec("gw", "none", 0.0).intensity == "io-bound"
    assert WorkloadSpec("gw", "none", 30.0).intensity == "balanced"


def test_balanced_compute_means():
    assert balanced_compute_mean("lw") == 10.0
    for p in ("lfp", "lrp", "gfp", "grp", "gw"):
        assert balanced_compute_mean(p) == 30.0


def test_suite_covers_all_cells():
    suite = standard_suite()
    patterns = {s.pattern for s in suite}
    syncs = {s.sync_style for s in suite}
    intensities = {s.intensity for s in suite}
    assert patterns == {"lfp", "lrp", "lw", "gfp", "grp", "gw"}
    assert syncs == {"none", "per-proc", "total", "portion"}
    assert intensities == {"balanced", "io-bound"}


def test_labels_unique():
    labels = [s.label for s in standard_suite()]
    assert len(labels) == len(set(labels))
