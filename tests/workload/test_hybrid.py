"""Tests for hybrid access patterns."""

import numpy as np
import pytest

from repro.sim import RandomStreams
from repro.workload import ProgressTracker, make_hybrid


def test_hybrid_assignment_must_cover_all_nodes():
    with pytest.raises(ValueError, match="cover"):
        make_hybrid({"lw": [0, 1]}, n_nodes=4)
    with pytest.raises(ValueError, match="cover"):
        make_hybrid({"lw": [0, 1], "seq": [1, 2, 3]}, n_nodes=4)


def test_hybrid_unknown_style_rejected():
    with pytest.raises(ValueError, match="unknown constituent"):
        make_hybrid({"zigzag": [0, 1]}, n_nodes=2)


def test_hybrid_lrp_requires_rng():
    with pytest.raises(ValueError, match="rng"):
        make_hybrid({"lrp": [0], "lw": [1]}, n_nodes=2)


def test_hybrid_builds_per_node_strings():
    pattern = make_hybrid(
        {"lw": [0, 2], "seq": [1, 3]},
        n_nodes=4,
        file_blocks=400,
        reads_per_node=50,
    )
    assert pattern.scope == "local"
    assert pattern.n_strings == 4
    assert pattern.total_reads == 200
    # lw nodes share the region.
    assert np.array_equal(pattern.strings[0], pattern.strings[2])
    assert np.array_equal(pattern.strings[0], np.arange(50))
    # seq nodes read private contiguous slices.
    assert pattern.strings[1][0] == 50
    assert pattern.strings[3][0] == 150


def test_hybrid_crossing_flags_follow_constituents():
    pattern = make_hybrid(
        {"lrp": [0], "lfp": [1], "lw": [2]},
        n_nodes=3,
        file_blocks=300,
        reads_per_node=30,
        rng=RandomStreams(1),
    )
    assert pattern.crosses_for(0) is False  # lrp: irregular portions
    assert pattern.crosses_for(1) is True
    assert pattern.crosses_for(2) is True


def test_hybrid_name_and_tracker_integration():
    pattern = make_hybrid(
        {"lw": [0], "seq": [1]}, n_nodes=2, file_blocks=100,
        reads_per_node=10,
    )
    assert "hybrid" in pattern.name
    tracker = ProgressTracker(pattern, 2)
    idx, block = tracker.next_ref(1)
    assert (idx, block) == (0, 10)


def test_hybrid_runs_end_to_end():
    from repro.experiments import ExperimentConfig
    from repro.experiments.runner import run_materialized

    config = ExperimentConfig(
        pattern="lw",  # placeholder; materialized pattern wins
        sync_style="per-proc",
        per_proc_k=5,
        n_nodes=4,
        n_disks=4,
        file_blocks=200,
        compute_mean=5.0,
    )
    rng = RandomStreams(1)
    pattern = make_hybrid(
        {"lw": [0, 1], "lfp": [2, 3]},
        n_nodes=4,
        file_blocks=200,
        reads_per_node=40,
        rng=rng,
    )
    result = run_materialized(pattern, config, rng)
    assert result.total_accesses == 160
    assert result.blocks_prefetched > 0


def test_crosses_by_string_validation():
    from repro.workload.patterns import AccessPattern

    with pytest.raises(ValueError, match="crosses_by_string"):
        AccessPattern(
            name="x", scope="local", file_blocks=10,
            strings=[np.array([0]), np.array([1])],
            portions=[np.array([0]), np.array([0])],
            crosses_portions=True,
            crosses_by_string=[True],
        )
