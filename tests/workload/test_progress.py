"""Tests for the ProgressTracker."""

import pytest

from repro.sim import RandomStreams
from repro.workload import ProgressTracker, make_pattern


def test_local_tracker_per_node_cursors():
    pattern = make_pattern("lfp", n_nodes=2, total_reads=20)
    tracker = ProgressTracker(pattern, 2)
    i0, b0 = tracker.next_ref(0)
    assert (i0, b0) == (0, int(pattern.strings[0][0]))
    # Node 1 has its own cursor.
    i1, b1 = tracker.next_ref(1)
    assert i1 == 0
    assert b1 == int(pattern.strings[1][0])
    assert tracker.frontier(0) == 0
    assert tracker.frontier(1) == 0


def test_global_tracker_self_scheduling():
    pattern = make_pattern("gw", n_nodes=3, total_reads=10, file_blocks=10)
    tracker = ProgressTracker(pattern, 3)
    assert tracker.next_ref(0) == (0, 0)
    assert tracker.next_ref(2) == (1, 1)
    assert tracker.next_ref(1) == (2, 2)
    # The frontier is shared.
    assert tracker.frontier(0) == 2


def test_exhaustion_returns_none():
    pattern = make_pattern("gw", n_nodes=2, total_reads=3, file_blocks=3)
    tracker = ProgressTracker(pattern, 2)
    for _ in range(3):
        assert tracker.next_ref(0) is not None
    assert tracker.next_ref(0) is None
    assert tracker.next_ref(1) is None


def test_consumed_accounting_and_all_done():
    pattern = make_pattern("gw", n_nodes=2, total_reads=2, file_blocks=2)
    tracker = ProgressTracker(pattern, 2)
    i0, _ = tracker.next_ref(0)
    i1, _ = tracker.next_ref(1)
    assert not tracker.all_done()
    tracker.mark_consumed(0, i0)
    tracker.mark_consumed(1, i1)
    assert tracker.all_done()
    assert tracker.total_consumed == 2
    assert tracker.total_issued == 2


def test_consume_before_issue_rejected():
    pattern = make_pattern("gw", n_nodes=2, total_reads=5, file_blocks=5)
    tracker = ProgressTracker(pattern, 2)
    with pytest.raises(ValueError):
        tracker.mark_consumed(0, 0)


def test_remaining_counts():
    pattern = make_pattern("lw", n_nodes=2, total_reads=10, file_blocks=100)
    tracker = ProgressTracker(pattern, 2)
    assert tracker.remaining(0) == 5
    tracker.next_ref(0)
    assert tracker.remaining(0) == 4
    assert tracker.remaining(1) == 5  # independent


def test_node_id_validation():
    pattern = make_pattern("gw", n_nodes=2, total_reads=5, file_blocks=5)
    tracker = ProgressTracker(pattern, 2)
    with pytest.raises(ValueError):
        tracker.next_ref(5)


def test_string_count_mismatch_rejected():
    pattern = make_pattern("lfp", n_nodes=4, total_reads=40)
    with pytest.raises(ValueError):
        ProgressTracker(pattern, 8)


def test_frontier_starts_at_minus_one():
    pattern = make_pattern("gw", n_nodes=2, total_reads=5, file_blocks=5)
    tracker = ProgressTracker(pattern, 2)
    assert tracker.frontier(0) == -1
    assert tracker.frontier(1) == -1
